#include "exec/engine.h"

#include <algorithm>

#include "util/timer.h"

namespace uot {

Engine::Engine(EngineConfig config) : config_(config) {
  UOT_CHECK(config_.num_workers >= 1);
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  queries_executed_counter_ = metrics_->GetCounter("engine.queries_executed");
  admission_rejections_counter_ =
      metrics_->GetCounter("engine.admission_rejections");
  inflight_gauge_ = metrics_->GetGauge("engine.inflight_queries");
  admission_waiters_gauge_ = metrics_->GetGauge("engine.admission_waiters");
  queue_depth_gauge_ = metrics_->GetGauge("engine.work_queue_depth");
  if (config_.memory_budget_bytes > 0) {
    budget_headroom_gauge_ = metrics_->GetGauge("engine.budget_headroom_bytes");
    budget_headroom_gauge_->Set(config_.memory_budget_bytes);
  }
  query_latency_hist_ = metrics_->GetHistogram("engine.query_latency_ns");
  admission_wait_hist_ = metrics_->GetHistogram("engine.admission_wait_ns");
  if (config_.sampler_interval_ms > 0) {
    obs::MetricsSampler::Options sampler_options;
    sampler_options.interval_ms = config_.sampler_interval_ms;
    sampler_options.capacity = std::max<size_t>(1, config_.sampler_capacity);
    sampler_options.pre_sample = [this] { RefreshGauges(); };
    sampler_ =
        std::make_unique<obs::MetricsSampler>(metrics_, sampler_options);
  }
  workers_.reserve(static_cast<size_t>(config_.num_workers));
  for (int w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  if (sampler_ != nullptr) sampler_->Start();
}

Engine::~Engine() { Shutdown(); }

void Engine::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    shutdown_ = true;
    // Queries already admitted run to completion. Queries blocked in the
    // admission wait are woken and rejected (their predicate is
    // shutdown-aware) — they must never be admitted into a pool that is
    // about to close. Wait for both populations to drain: active sessions
    // and admission waiters (head catches up with tail as each waiter is
    // rejected).
    admission_cv_.notify_all();
    admission_cv_.wait(lock, [this] {
      return active_ == 0 && admission_head_ == admission_tail_;
    });
  }
  work_queue_.Close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  // After the pool is quiet, so the final sample is the true end state.
  if (sampler_ != nullptr) sampler_->Stop();
}

bool Engine::CanAdmitLocked(const StorageManager* storage) const {
  if (active_ == 0) return true;  // progress guarantee
  if (config_.max_inflight_queries > 0 &&
      active_ >= config_.max_inflight_queries) {
    return false;
  }
  if (config_.memory_budget_bytes > 0) {
    // Sum tracked memory over the candidate's and every active session's
    // storage manager, counting shared managers once.
    int64_t total = storage->tracker().TotalCurrent();
    std::vector<const StorageManager*> seen{storage};
    for (const StorageManager* s : active_storages_) {
      if (std::find(seen.begin(), seen.end(), s) != seen.end()) continue;
      seen.push_back(s);
      total += s->tracker().TotalCurrent();
    }
    if (total > config_.memory_budget_bytes) return false;
  }
  return true;
}

int64_t Engine::TrackedBytesLocked() const {
  int64_t total = 0;
  std::vector<const StorageManager*> seen;
  for (const StorageManager* s : active_storages_) {
    if (std::find(seen.begin(), seen.end(), s) != seen.end()) continue;
    seen.push_back(s);
    total += s->tracker().TotalCurrent();
  }
  return total;
}

void Engine::RefreshGauges() {
  queue_depth_gauge_->Set(static_cast<int64_t>(WorkQueueDepth()));
  std::lock_guard<std::mutex> lock(admission_mutex_);
  inflight_gauge_->Set(active_);
  admission_waiters_gauge_->Set(
      static_cast<int64_t>(admission_tail_ - admission_head_));
  if (budget_headroom_gauge_ != nullptr) {
    budget_headroom_gauge_->Set(config_.memory_budget_bytes -
                                TrackedBytesLocked());
  }
}

ExecutionStats Engine::Execute(QueryPlan* plan, const ExecConfig& config) {
  ExecutionStats stats;
  const Status status = ExecuteOrReject(plan, config, &stats);
  UOT_CHECK(status.ok());  // Execute() racing/after Shutdown() is a caller
                           // bug; use ExecuteOrReject() to handle it.
  return stats;
}

Status Engine::ExecuteOrReject(QueryPlan* plan, const ExecConfig& config,
                               ExecutionStats* stats) {
  UOT_CHECK(plan != nullptr);
  UOT_CHECK(stats != nullptr);
  const StorageManager* storage = plan->storage();
  const int64_t admission_start_ns = NowNanos();
  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    if (shutdown_) {
      admission_rejections_counter_->Increment();
      return Status::FailedPrecondition(
          "Engine::Execute called after Shutdown()");
    }
    // FIFO admission: take the next ticket and wait until every earlier
    // ticket has been admitted (or rejected) AND the headroom predicate
    // holds. Strict ordering makes admission starvation-free — a stream of
    // small queries can no longer overtake a large-budget query that
    // arrived first every time the engine briefly has headroom. The wait
    // predicate is shutdown-aware: Shutdown() wakes waiters, which are
    // rejected here instead of being admitted into a closed worker pool.
    const uint64_t ticket = admission_tail_++;
    admission_cv_.wait(lock, [&] {
      return shutdown_ ||
             (ticket == admission_head_ && CanAdmitLocked(storage));
    });
    if (shutdown_) {
      ++admission_head_;  // drain the ticket so waiters behind us advance
      admission_cv_.notify_all();
      admission_rejections_counter_->Increment();
      return Status::FailedPrecondition(
          "engine shut down while the query waited in admission");
    }
    ++admission_head_;
    ++active_;
    active_storages_.push_back(storage);
    // The next ticket may be admissible right away (e.g. under
    // max_inflight > 1 with headroom to spare).
    admission_cv_.notify_all();
  }
  const int64_t admitted_ns = NowNanos();

  QuerySession session(plan, config, this, config_.num_workers,
                       next_query_id_.fetch_add(1,
                                                std::memory_order_relaxed));
  *stats = session.Run();
  stats->admission_wait_ns = admitted_ns - admission_start_ns;

  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    --active_;
    active_storages_.erase(std::find(active_storages_.begin(),
                                     active_storages_.end(), storage));
  }
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  queries_executed_counter_->Increment();
  query_latency_hist_->Record(stats->query_end_ns - stats->query_start_ns);
  admission_wait_hist_->Record(stats->admission_wait_ns);
  admission_cv_.notify_all();
  return Status::OK();
}

int Engine::active_queries() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return active_;
}

int Engine::admission_waiters() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return static_cast<int>(admission_tail_ - admission_head_);
}

bool Engine::SubmitWork(QuerySession* session, std::unique_ptr<WorkOrder> wo,
                        bool high_priority) {
  WorkItem item{session, std::move(wo)};
  return high_priority ? work_queue_.PushFront(std::move(item))
                       : work_queue_.Push(std::move(item));
}

size_t Engine::WorkQueueDepth() const { return work_queue_.Size(); }

void Engine::WorkerLoop(int worker_id) {
  while (true) {
    std::optional<WorkItem> item = work_queue_.Pop();
    if (!item.has_value()) return;
    item->session->ExecuteWorkOrder(std::move(item->work_order), worker_id);
    // Let the coordinator react (transfer blocks, release transients)
    // before taking more work — important on machines with few cores,
    // where a busy worker can otherwise starve the coordinator threads.
    std::this_thread::yield();
  }
}

}  // namespace uot
