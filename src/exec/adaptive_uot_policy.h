#ifndef UOT_EXEC_ADAPTIVE_UOT_POLICY_H_
#define UOT_EXEC_ADAPTIVE_UOT_POLICY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "scheduler/uot_policy.h"

namespace uot {

struct UotChoice;  // model/uot_chooser.h

/// Runtime-adaptive per-edge UoT (tentpole part 4): every edge starts from
/// a seed UoT — typically the CostModelUotChooser's static pick — and moves
/// along the spectrum in response to the engine feedback carried by
/// EdgeRuntimeState:
///
///  - *narrow* (halve, toward pipelining) under memory pressure: tracked
///    bytes above the narrow watermark of the shared budget, or producer
///    work orders already sitting in the budget-deferral queue. Smaller
///    transfer granules shrink the edge's live buffer and let consumers
///    drain intermediates sooner (the paper's Table II low-UoT advantage);
///  - *widen* (double, toward materializing) when memory has stayed calm
///    for a streak of consultations, reaching the streak faster when the
///    producer runs far ahead of the consumer (rate imbalance means
///    transfers are pure scheduling overhead — Section V's high-UoT
///    regime).
///
/// One instance may serve many concurrent sessions of one Engine: state is
/// keyed by (query_id, edge_index) under a mutex, and sessions only consult
/// the policy on coordinator events (never on the worker hot path).
class AdaptiveUotPolicy final : public EdgeUotPolicy {
 public:
  struct Options {
    /// Seed UoT for edges without a per-edge seed, blocks.
    uint64_t initial_blocks = 4;
    uint64_t min_blocks = 1;
    uint64_t max_blocks = 64;
    /// Fraction of the budget headroom (budget minus the tracked bytes
    /// already resident when the session started) above which edges
    /// narrow. Watermarks are applied to headroom, not the raw budget:
    /// resident base tables would otherwise pin usage near 1 and drown
    /// the signal from the query's own intermediates.
    double narrow_watermark = 0.85;
    /// Headroom fraction below which edges may widen.
    double widen_watermark = 0.55;
    /// Calm consultations (no pressure, usage under the widen watermark)
    /// before an edge widens one step.
    uint64_t widen_after_calm = 8;
    /// Producer-ahead ratio (completed producer / consumer work orders)
    /// that halves the required calm streak.
    double imbalance_ratio = 4.0;
    /// Ceiling for exchange/repartition edges (EdgeRuntimeState::
    /// is_exchange), applied on top of max_blocks. The partitioned build
    /// downstream buffers its whole input regardless, so widening an
    /// exchange edge buys no locality — it only delays the repartition
    /// work that should overlap the producer. Kept > min so the edge can
    /// still narrow under memory pressure.
    uint64_t exchange_max_blocks = 8;
  };

  AdaptiveUotPolicy() : AdaptiveUotPolicy(Options{}) {}
  explicit AdaptiveUotPolicy(Options options);
  /// Per-edge seeds (indexed by edge_index) from a CostModelUotChooser
  /// run; UotPolicy::kWholeTable seeds clamp to max_blocks so the edge
  /// stays adaptable in both directions.
  AdaptiveUotPolicy(Options options, std::vector<uint64_t> edge_seeds);

  uint64_t BlocksPerTransfer(const EdgeRuntimeState& edge) override;

  /// The decision plus its cause: kSeed on an edge's first consultation,
  /// kDeferralDepth/kHeadroomWatermark for narrows, kCalmStreak/
  /// kRateImbalance for widens, kNone when the value is unchanged.
  uint64_t BlocksPerTransfer(const EdgeRuntimeState& edge,
                             UotAdaptCause* cause) override;

  std::string ToString() const override;

  /// Widen/narrow steps taken across all queries and edges so far.
  uint64_t adaptations() const {
    return adaptations_.load(std::memory_order_relaxed);
  }

  /// Seeds (one per edge) from chooser choices, for the seeded
  /// constructor.
  static std::vector<uint64_t> SeedsFromChoices(
      const std::vector<UotChoice>& choices, uint64_t max_blocks);

 private:
  struct EdgeControl {
    uint64_t blocks;
    uint64_t calm_streak = 0;
  };

  uint64_t SeedFor(int edge_index) const;

  const Options options_;
  const std::vector<uint64_t> edge_seeds_;
  std::atomic<uint64_t> adaptations_{0};
  std::mutex mutex_;
  // Keyed by (query_id, edge_index); entries are few (edges per query)
  // and live for the policy's lifetime.
  std::map<std::pair<uint64_t, int>, EdgeControl> edges_;
};

}  // namespace uot

#endif  // UOT_EXEC_ADAPTIVE_UOT_POLICY_H_
