#ifndef UOT_EXEC_ENGINE_H_
#define UOT_EXEC_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/metrics_sampler.h"
#include "plan/query_plan.h"
#include "scheduler/query_session.h"
#include "util/status.h"

namespace uot {

/// Engine-wide configuration: the shared resources behind all concurrently
/// executing queries.
struct EngineConfig {
  /// Size of the persistent worker pool shared by every session.
  int num_workers = 4;
  /// Admission control: maximum queries executing at once (0 = unlimited).
  /// Excess Execute() calls block until a slot frees up.
  int max_inflight_queries = 0;
  /// Admission control: shared soft memory budget in bytes across all
  /// active sessions' storage managers (0 = unlimited). A query is held at
  /// admission while the tracked total exceeds the budget — except that
  /// one query is always admitted so the system progresses. This is
  /// engine-level admission; the per-work-order budget policy inside a
  /// query is ExecConfig::memory_budget_bytes.
  int64_t memory_budget_bytes = 0;
  /// Engine-level telemetry registry. When set, the engine records its
  /// service metrics (engine.* gauges, counters, and latency histograms)
  /// into this shared registry; when null it owns a private one, readable
  /// via metrics(). Distinct from the per-query ExecConfig::metrics.
  obs::MetricsRegistry* metrics = nullptr;
  /// Time-series sampling interval for the engine registry; 0 disables
  /// the background sampler. When enabled, a MetricsSampler snapshots
  /// every counter/gauge at this interval into a bounded ring buffer
  /// (readable via sampler()), refreshing the on-demand engine gauges
  /// (in-flight queries, work-queue depth, budget headroom) right before
  /// each snapshot.
  int64_t sampler_interval_ms = 0;
  /// Ring-buffer capacity of the sampler, in samples.
  size_t sampler_capacity = 600;
};

/// A long-lived query execution service (the architectural move of
/// "To pipeline or not to pipeline" and Theseus: the executor as a
/// resource-managed service, not a per-query thread bundle).
///
/// The engine owns one persistent pool of `num_workers` threads and a
/// shared work-order queue. Each Execute() call runs one QuerySession: the
/// calling thread drives the session's coordinator loop while pool workers
/// execute work orders tagged with their owning session; completion events
/// route back to that session's event queue. Any number of threads may
/// call Execute() concurrently — admission control (max in-flight queries
/// plus a shared memory budget) decides when each query starts.
///
/// Observability stays per-query: give each session its own TraceSession /
/// MetricsRegistry via ExecConfig (or a shared registry with distinct
/// `metrics_prefix` values); work-order spans land in the owning session's
/// trace no matter which pool worker ran them.
///
/// Per-session memory peaks (ExecutionStats::peak_bytes) are read from the
/// plan's storage-manager tracker and are only meaningful when concurrent
/// sessions do not share a StorageManager.
class Engine final : public WorkOrderSink {
 public:
  explicit Engine(EngineConfig config);
  /// Waits for active queries to finish, then stops the pool.
  ~Engine() override;
  UOT_DISALLOW_COPY_AND_ASSIGN(Engine);

  /// Executes `plan` to completion and returns its statistics. Blocks in
  /// admission control first when the engine is saturated; safe to call
  /// from many threads concurrently. The per-query scheduling knobs of
  /// `config` (UoT policy, budget, caps, obs sinks) apply as in a
  /// standalone run; `config.num_workers` is ignored — the engine's pool
  /// executes the work orders.
  ///
  /// Admission is FIFO: queries are considered strictly in arrival order,
  /// so a stream of small queries cannot starve a large-budget one that
  /// arrived before them. CHECK-fails if the engine shuts down while the
  /// query waits in admission (or was already shut down); long-lived
  /// callers that race Execute() against Shutdown() — e.g. a server front
  /// end draining connections — should use ExecuteOrReject() instead.
  ExecutionStats Execute(QueryPlan* plan, const ExecConfig& config);

  /// Like Execute(), but reports shutdown as a recoverable error instead
  /// of CHECK-failing: returns FailedPrecondition when the engine is shut
  /// down (or shuts down while the query waits in admission), leaving
  /// `*stats` untouched. On OK, `*stats` holds the execution statistics.
  Status ExecuteOrReject(QueryPlan* plan, const ExecConfig& config,
                         ExecutionStats* stats);

  /// Wakes queries blocked in admission (they are rejected, never admitted
  /// into the closing pool), waits until no query is active and every
  /// admission waiter has drained, then closes the shared queue and joins
  /// the pool. Idempotent; Execute() must not be called afterwards.
  void Shutdown();

  int num_workers() const { return config_.num_workers; }
  /// Queries currently admitted and executing.
  int active_queries() const;
  /// Queries currently blocked in admission control (FIFO ticket taken,
  /// not yet admitted or rejected).
  int admission_waiters() const;
  /// Total queries that have completed on this engine.
  uint64_t queries_executed() const {
    return queries_executed_.load(std::memory_order_relaxed);
  }

  /// The engine telemetry registry: EngineConfig::metrics when provided,
  /// otherwise the engine-owned one. Holds the engine.queries_executed /
  /// engine.admission_rejections counters, engine.inflight_queries /
  /// engine.admission_waiters / engine.work_queue_depth /
  /// engine.budget_headroom_bytes gauges (refreshed on demand and before
  /// every sample), and the engine.query_latency_ns /
  /// engine.admission_wait_ns histograms.
  obs::MetricsRegistry* metrics() const { return metrics_; }
  /// The background time-series sampler; nullptr unless
  /// EngineConfig::sampler_interval_ms > 0. Stopped (with a final sample)
  /// by Shutdown.
  obs::MetricsSampler* sampler() const { return sampler_.get(); }
  /// Refreshes the on-demand engine gauges (in-flight queries, work-queue
  /// depth, budget headroom) right now; the sampler calls this before
  /// every snapshot, and callers without a sampler may poll it directly.
  void RefreshGauges();

  // WorkOrderSink — called by sessions (coordinator threads).
  bool SubmitWork(QuerySession* session, std::unique_ptr<WorkOrder> wo,
                  bool high_priority) override;
  size_t WorkQueueDepth() const override;

 private:
  /// A work order tagged with its owning session.
  struct WorkItem {
    QuerySession* session;
    std::unique_ptr<WorkOrder> work_order;
  };

  void WorkerLoop(int worker_id);
  /// Admission predicate; `admission_mutex_` must be held.
  bool CanAdmitLocked(const StorageManager* storage) const;
  /// Tracked bytes across active sessions' storage managers, counting
  /// shared managers once; `admission_mutex_` must be held.
  int64_t TrackedBytesLocked() const;

  const EngineConfig config_;
  ThreadSafeQueue<WorkItem> work_queue_;
  std::vector<std::thread> workers_;

  mutable std::mutex admission_mutex_;
  std::condition_variable admission_cv_;
  int active_ = 0;                // guarded by admission_mutex_
  bool shutdown_ = false;         // guarded by admission_mutex_
  // FIFO admission tickets: an arriving query takes ticket admission_tail_
  // and is only considered once admission_head_ reaches it; head advances
  // on admission and on shutdown rejection. Guarded by admission_mutex_.
  uint64_t admission_tail_ = 0;
  uint64_t admission_head_ = 0;
  // Storage managers of active sessions (one entry per session; duplicates
  // possible when sessions share storage). Guarded by admission_mutex_.
  std::vector<const StorageManager*> active_storages_;

  std::atomic<uint64_t> next_query_id_{1};
  std::atomic<uint64_t> queries_executed_{0};

  // Telemetry. Resolved once in the constructor; the per-completion
  // handles are lock-free after that.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;  // == owned or config's
  obs::Counter* queries_executed_counter_ = nullptr;
  obs::Counter* admission_rejections_counter_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;
  obs::Gauge* admission_waiters_gauge_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Gauge* budget_headroom_gauge_ = nullptr;  // only when budgeted
  obs::Histogram* query_latency_hist_ = nullptr;
  obs::Histogram* admission_wait_hist_ = nullptr;
  std::unique_ptr<obs::MetricsSampler> sampler_;
};

}  // namespace uot

#endif  // UOT_EXEC_ENGINE_H_
