#ifndef UOT_TYPES_SCHEMA_H_
#define UOT_TYPES_SCHEMA_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "types/type.h"
#include "util/macros.h"

namespace uot {

/// A named, typed column in a schema.
struct Column {
  std::string name;
  Type type;
};

/// An ordered list of columns plus the derived packed row layout.
///
/// The packed layout (no padding) is the canonical tuple wire format: the
/// row store stores tuples in exactly this layout, the column store stores
/// each column's packed values contiguously, and operators exchange tuples
/// in this layout. All loads/stores go through memcpy so packing is safe.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);
  Schema(std::initializer_list<Column> columns)
      : Schema(std::vector<Column>(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const {
    UOT_DCHECK(i >= 0 && i < num_columns());
    return columns_[static_cast<size_t>(i)];
  }
  const std::vector<Column>& columns() const { return columns_; }

  /// Byte offset of column `i` within a packed row.
  uint32_t offset(int i) const {
    UOT_DCHECK(i >= 0 && i < num_columns());
    return offsets_[static_cast<size_t>(i)];
  }

  /// Total packed row width in bytes.
  uint32_t row_width() const { return row_width_; }

  /// Index of the column named `name`; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  bool operator==(const Schema& other) const;
  bool operator!=(const Schema& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::vector<uint32_t> offsets_;
  uint32_t row_width_ = 0;
};

}  // namespace uot

#endif  // UOT_TYPES_SCHEMA_H_
