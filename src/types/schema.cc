#include "types/schema.h"

namespace uot {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  uint32_t offset = 0;
  for (const Column& col : columns_) {
    offsets_.push_back(offset);
    offset += col.type.width();
  }
  row_width_ = offset;
  UOT_CHECK(row_width_ > 0 || columns_.empty());
}

int Schema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type != other.columns_[i].type) return false;
    if (columns_[i].name != other.columns_[i].name) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += column(i).name + " " + column(i).type.ToString();
  }
  out += ")";
  return out;
}

}  // namespace uot
