#include "types/typed_value.h"

#include <algorithm>

#include "types/date.h"

namespace uot {

TypedValue TypedValue::Int32(int32_t v) {
  TypedValue t;
  t.type_id_ = TypeId::kInt32;
  t.value_.i64 = v;
  return t;
}

TypedValue TypedValue::Int64(int64_t v) {
  TypedValue t;
  t.type_id_ = TypeId::kInt64;
  t.value_.i64 = v;
  return t;
}

TypedValue TypedValue::Double(double v) {
  TypedValue t;
  t.type_id_ = TypeId::kDouble;
  t.value_.f64 = v;
  return t;
}

TypedValue TypedValue::Date(int32_t days) {
  TypedValue t;
  t.type_id_ = TypeId::kDate;
  t.value_.i64 = days;
  return t;
}

TypedValue TypedValue::Char(std::string v) {
  TypedValue t;
  t.type_id_ = TypeId::kChar;
  t.str_ = std::move(v);
  return t;
}

double TypedValue::ToDouble() const {
  switch (type_id_) {
    case TypeId::kDouble:
      return value_.f64;
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate:
      return static_cast<double>(value_.i64);
    case TypeId::kChar:
      UOT_CHECK(false);
  }
  return 0.0;
}

int64_t TypedValue::ToInt64() const {
  UOT_DCHECK(type_id_ != TypeId::kChar && type_id_ != TypeId::kDouble);
  return value_.i64;
}

void TypedValue::CopyTo(const Type& type, void* dest) const {
  UOT_DCHECK(type.id() == type_id_);
  switch (type_id_) {
    case TypeId::kInt32:
    case TypeId::kDate: {
      const int32_t v = static_cast<int32_t>(value_.i64);
      std::memcpy(dest, &v, 4);
      return;
    }
    case TypeId::kInt64:
      std::memcpy(dest, &value_.i64, 8);
      return;
    case TypeId::kDouble:
      std::memcpy(dest, &value_.f64, 8);
      return;
    case TypeId::kChar: {
      char* out = static_cast<char*>(dest);
      const size_t n =
          std::min<size_t>(str_.size(), static_cast<size_t>(type.width()));
      std::memcpy(out, str_.data(), n);
      std::memset(out + n, ' ', type.width() - n);
      return;
    }
  }
}

TypedValue TypedValue::Load(const Type& type, const void* src) {
  switch (type.id()) {
    case TypeId::kInt32: {
      int32_t v;
      std::memcpy(&v, src, 4);
      return Int32(v);
    }
    case TypeId::kDate: {
      int32_t v;
      std::memcpy(&v, src, 4);
      return Date(v);
    }
    case TypeId::kInt64: {
      int64_t v;
      std::memcpy(&v, src, 8);
      return Int64(v);
    }
    case TypeId::kDouble: {
      double v;
      std::memcpy(&v, src, 8);
      return Double(v);
    }
    case TypeId::kChar: {
      const char* s = static_cast<const char*>(src);
      size_t len = type.width();
      while (len > 0 && s[len - 1] == ' ') --len;  // strip padding
      return Char(std::string(s, len));
    }
  }
  UOT_CHECK(false);
  return TypedValue();
}

bool TypedValue::operator==(const TypedValue& other) const {
  if (type_id_ != other.type_id_) return false;
  switch (type_id_) {
    case TypeId::kChar:
      return str_ == other.str_;
    case TypeId::kDouble:
      return value_.f64 == other.value_.f64;
    default:
      return value_.i64 == other.value_.i64;
  }
}

bool TypedValue::operator<(const TypedValue& other) const {
  UOT_DCHECK(type_id_ == other.type_id_);
  switch (type_id_) {
    case TypeId::kChar:
      return str_ < other.str_;
    case TypeId::kDouble:
      return value_.f64 < other.value_.f64;
    default:
      return value_.i64 < other.value_.i64;
  }
}

std::string TypedValue::ToString() const {
  switch (type_id_) {
    case TypeId::kInt32:
    case TypeId::kInt64:
      return std::to_string(value_.i64);
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4f", value_.f64);
      return buf;
    }
    case TypeId::kDate:
      return DateToString(static_cast<int32_t>(value_.i64));
    case TypeId::kChar:
      return str_;
  }
  return "?";
}

}  // namespace uot
