#ifndef UOT_TYPES_TYPE_H_
#define UOT_TYPES_TYPE_H_

#include <cstdint>
#include <string>

#include "util/macros.h"

namespace uot {

/// Column type tags.
///
/// All types are fixed-width: the engine follows Quickstep's design where
/// row-store tuples are fixed width (variable-length data would live in a
/// separate region; the paper's workloads only need fixed-width columns, with
/// DECIMAL mapped to double and VARCHAR mapped to CHAR(n) — see DESIGN.md).
enum class TypeId : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kDouble = 2,
  kDate = 3,  // int32 days since 1970-01-01
  kChar = 4,  // fixed-width byte string, space padded
};

/// A concrete column type: a tag plus a byte width (width is only
/// configurable for kChar).
class Type {
 public:
  static Type Int32() { return Type(TypeId::kInt32, 4); }
  static Type Int64() { return Type(TypeId::kInt64, 8); }
  static Type Double() { return Type(TypeId::kDouble, 8); }
  static Type Date() { return Type(TypeId::kDate, 4); }
  static Type Char(uint16_t width) {
    UOT_CHECK(width > 0);
    return Type(TypeId::kChar, width);
  }

  TypeId id() const { return id_; }
  uint16_t width() const { return width_; }

  bool IsNumeric() const {
    return id_ == TypeId::kInt32 || id_ == TypeId::kInt64 ||
           id_ == TypeId::kDouble || id_ == TypeId::kDate;
  }

  /// True if values of this type are stored as an integral machine word
  /// (and hence usable as a join/grouping key).
  bool IsIntegral() const {
    return id_ == TypeId::kInt32 || id_ == TypeId::kInt64 ||
           id_ == TypeId::kDate;
  }

  bool operator==(const Type& other) const {
    return id_ == other.id_ && width_ == other.width_;
  }
  bool operator!=(const Type& other) const { return !(*this == other); }

  /// e.g. "INT32", "CHAR(10)".
  std::string ToString() const;

 private:
  Type(TypeId id, uint16_t width) : id_(id), width_(width) {}

  TypeId id_;
  uint16_t width_;
};

}  // namespace uot

#endif  // UOT_TYPES_TYPE_H_
