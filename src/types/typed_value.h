#ifndef UOT_TYPES_TYPED_VALUE_H_
#define UOT_TYPES_TYPED_VALUE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "types/type.h"
#include "util/macros.h"

namespace uot {

/// A single boxed value, used outside hot loops: literals in expressions,
/// aggregate results, test assertions and result rendering.
///
/// Hot-path evaluation works directly on packed block storage; TypedValue is
/// the boundary representation.
class TypedValue {
 public:
  TypedValue() : type_id_(TypeId::kInt32) { value_.i64 = 0; }

  static TypedValue Int32(int32_t v);
  static TypedValue Int64(int64_t v);
  static TypedValue Double(double v);
  static TypedValue Date(int32_t days);
  static TypedValue Char(std::string v);

  TypeId type_id() const { return type_id_; }

  int32_t AsInt32() const {
    UOT_DCHECK(type_id_ == TypeId::kInt32 || type_id_ == TypeId::kDate);
    return static_cast<int32_t>(value_.i64);
  }
  int64_t AsInt64() const {
    UOT_DCHECK(type_id_ == TypeId::kInt64);
    return value_.i64;
  }
  double AsDouble() const {
    UOT_DCHECK(type_id_ == TypeId::kDouble);
    return value_.f64;
  }
  const std::string& AsChar() const {
    UOT_DCHECK(type_id_ == TypeId::kChar);
    return str_;
  }

  /// Numeric value widened to double (valid for all numeric type ids).
  double ToDouble() const;

  /// Integral value widened to int64 (valid for integral type ids).
  int64_t ToInt64() const;

  /// Writes the packed representation (`type.width()` bytes) to `dest`.
  /// Char values are space padded / truncated to the column width.
  void CopyTo(const Type& type, void* dest) const;

  /// Reads a packed value of `type` from `src`.
  static TypedValue Load(const Type& type, const void* src);

  bool operator==(const TypedValue& other) const;
  bool operator!=(const TypedValue& other) const { return !(*this == other); }
  /// Ordering across same-typed values (numeric or lexicographic).
  bool operator<(const TypedValue& other) const;

  std::string ToString() const;

 private:
  TypeId type_id_;
  union {
    int64_t i64;
    double f64;
  } value_;
  std::string str_;  // only for kChar
};

}  // namespace uot

#endif  // UOT_TYPES_TYPED_VALUE_H_
