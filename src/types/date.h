#ifndef UOT_TYPES_DATE_H_
#define UOT_TYPES_DATE_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace uot {

/// Calendar helpers for the DATE type (int32 days since 1970-01-01).
///
/// Uses the standard civil-calendar conversion algorithms so interval
/// arithmetic in TPC-H predicates (e.g. `date '1994-01-01' + 1 year`) is
/// exact.

/// Days since 1970-01-01 for a proleptic Gregorian date.
constexpr int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int32_t>(era * 146097 + static_cast<int>(doe) - 719468);
}

/// Inverse of DaysFromCivil.
constexpr void CivilFromDays(int32_t z, int* y, int* m, int* d) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int yy = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = yy + (*m <= 2);
}

/// `MakeDate(1995, 3, 15)` == days value for 1995-03-15.
constexpr int32_t MakeDate(int y, int m, int d) { return DaysFromCivil(y, m, d); }

/// Adds calendar months, clamping the day-of-month (1995-01-31 + 1 month ->
/// 1995-02-28), matching SQL interval semantics closely enough for TPC-H.
inline int32_t AddMonths(int32_t date, int months) {
  int y, m, d;
  CivilFromDays(date, &y, &m, &d);
  int total = (y * 12 + (m - 1)) + months;
  y = total / 12;
  m = total % 12 + 1;
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  int maxd = kDays[m - 1];
  if (m == 2 && ((y % 4 == 0 && y % 100 != 0) || y % 400 == 0)) maxd = 29;
  if (d > maxd) d = maxd;
  return DaysFromCivil(y, m, d);
}

inline int32_t AddYears(int32_t date, int years) {
  return AddMonths(date, years * 12);
}

/// "YYYY-MM-DD" rendering.
inline std::string DateToString(int32_t date) {
  int y, m, d;
  CivilFromDays(date, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace uot

#endif  // UOT_TYPES_DATE_H_
