#ifndef UOT_TYPES_ROW_BUILDER_H_
#define UOT_TYPES_ROW_BUILDER_H_

#include <cstring>
#include <string>
#include <vector>

#include "types/schema.h"
#include "util/macros.h"

namespace uot {

/// Assembles packed rows column by column (loader/generator path).
class RowBuilder {
 public:
  explicit RowBuilder(const Schema* schema)
      : schema_(schema), row_(schema->row_width()) {}

  void SetInt32(int col, int32_t v) {
    UOT_DCHECK(schema_->column(col).type.width() == 4);
    std::memcpy(row_.data() + schema_->offset(col), &v, 4);
  }
  void SetInt64(int col, int64_t v) {
    UOT_DCHECK(schema_->column(col).type.id() == TypeId::kInt64);
    std::memcpy(row_.data() + schema_->offset(col), &v, 8);
  }
  void SetDouble(int col, double v) {
    UOT_DCHECK(schema_->column(col).type.id() == TypeId::kDouble);
    std::memcpy(row_.data() + schema_->offset(col), &v, 8);
  }
  void SetDate(int col, int32_t days) { SetInt32(col, days); }
  void SetChar(int col, const std::string& v) {
    const Type& type = schema_->column(col).type;
    UOT_DCHECK(type.id() == TypeId::kChar);
    char* out = reinterpret_cast<char*>(row_.data() + schema_->offset(col));
    const size_t n =
        v.size() < type.width() ? v.size() : static_cast<size_t>(type.width());
    std::memcpy(out, v.data(), n);
    std::memset(out + n, ' ', type.width() - n);
  }

  /// The packed row (valid until the next Set* call mutates it).
  const std::byte* data() const { return row_.data(); }

 private:
  const Schema* const schema_;
  std::vector<std::byte> row_;
};

}  // namespace uot

#endif  // UOT_TYPES_ROW_BUILDER_H_
