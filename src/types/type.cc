#include "types/type.h"

namespace uot {

std::string Type::ToString() const {
  switch (id_) {
    case TypeId::kInt32:
      return "INT32";
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kChar:
      return "CHAR(" + std::to_string(width_) + ")";
  }
  return "UNKNOWN";
}

}  // namespace uot
