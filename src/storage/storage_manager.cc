#include "storage/storage_manager.h"

#include <algorithm>

namespace uot {

Block* StorageManager::CreateBlock(const Schema* schema, Layout layout,
                                   size_t capacity_bytes,
                                   MemoryCategory category) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto block =
      std::make_unique<Block>(next_id_++, schema, layout, capacity_bytes);
  Block* raw = block.get();
  tracker_.Allocate(category, raw->allocated_bytes());
  entries_.push_back(Entry{std::move(block), category});
  return raw;
}

void StorageManager::DropBlock(Block* block) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [block](const Entry& e) {
                           return e.block.get() == block;
                         });
  UOT_CHECK(it != entries_.end());
  tracker_.Release(it->category, block->allocated_bytes());
  entries_.erase(it);
}

size_t StorageManager::num_blocks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace uot
