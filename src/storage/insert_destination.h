#ifndef UOT_STORAGE_INSERT_DESTINATION_H_
#define UOT_STORAGE_INSERT_DESTINATION_H_

#include <atomic>
#include <functional>
#include <vector>

#include "storage/block_pool.h"
#include "storage/table.h"

namespace uot {

/// The output sink of a producer operator (paper Section III-A/B).
///
/// Each executing work order opens a Writer, which checks a partially
/// filled block out of the pool, appends output rows, and returns the block
/// when the work order finishes. Whenever a block fills up it is moved into
/// the output table and announced through `on_block_ready` — that signal is
/// what the scheduler's UoT policy accumulates to decide when data is
/// transferred to the consumer operator.
class InsertDestination {
 public:
  /// Called with each completed (full or final partial) block. Invoked from
  /// worker threads; the callee must be thread-safe.
  using BlockReadyCallback = std::function<void(Block*)>;

  /// `output` receives completed blocks and must outlive this destination.
  InsertDestination(StorageManager* storage, Table* output,
                    BlockReadyCallback on_block_ready,
                    MemoryCategory category = MemoryCategory::kTemporaryTable);
  UOT_DISALLOW_COPY_AND_ASSIGN(InsertDestination);

  const Schema& schema() const { return output_->schema(); }
  Table* output() const { return output_; }

  /// Declares this destination the sink of one hash partition: every block
  /// it completes is tagged with `partition` so partition-aware consumers
  /// (partitioned build/probe) can route it. Call before execution starts.
  /// -1 (the default) leaves blocks untagged.
  void set_partition(int32_t partition) { partition_ = partition; }
  int32_t partition() const { return partition_; }

  /// Installs/replaces the block-ready listener; must be called before
  /// execution starts (not thread-safe against concurrent writers).
  void set_on_block_ready(BlockReadyCallback cb) {
    on_block_ready_ = std::move(cb);
  }

  /// A work-order-scoped writer. Movable-from only by the factory.
  class Writer {
   public:
    explicit Writer(InsertDestination* dest);
    ~Writer();
    UOT_DISALLOW_COPY_AND_ASSIGN(Writer);

    /// Appends one packed row (schema().row_width() bytes).
    void AppendRow(const std::byte* packed_row);

   private:
    InsertDestination* const dest_;
    Block* block_;
  };

  /// Announces every pooled partially-filled block as ready; called once
  /// when the producer operator has executed all of its work orders
  /// ("partially filled blocks are scheduled for data transfer at the end
  /// of the operator's execution").
  void Flush();

  /// Number of blocks announced ready so far.
  uint64_t blocks_completed() const { return blocks_completed_; }

 private:
  friend class Writer;

  void CompleteBlock(Block* block);

  StorageManager* const storage_;
  Table* const output_;
  BlockPool pool_;
  BlockReadyCallback on_block_ready_;
  int32_t partition_ = -1;
  std::atomic<uint64_t> blocks_completed_{0};
};

}  // namespace uot

#endif  // UOT_STORAGE_INSERT_DESTINATION_H_
