#include "storage/block_pool.h"

namespace uot {

BlockPool::BlockPool(StorageManager* storage, const Schema* schema,
                     Layout layout, size_t block_bytes,
                     MemoryCategory category)
    : storage_(storage),
      schema_(schema),
      layout_(layout),
      block_bytes_(block_bytes),
      category_(category) {
  UOT_CHECK(storage_ != nullptr && schema_ != nullptr);
}

Block* BlockPool::Checkout() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pool_.empty()) {
      Block* block = pool_.back();
      pool_.pop_back();
      return block;
    }
  }
  return storage_->CreateBlock(schema_, layout_, block_bytes_, category_);
}

void BlockPool::Return(Block* block) {
  UOT_DCHECK(!block->Full());
  std::lock_guard<std::mutex> lock(mutex_);
  pool_.push_back(block);
}

std::vector<Block*> BlockPool::DrainAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Block*> drained;
  drained.swap(pool_);
  return drained;
}

size_t BlockPool::PooledCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pool_.size();
}

}  // namespace uot
