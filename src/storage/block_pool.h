#ifndef UOT_STORAGE_BLOCK_POOL_H_
#define UOT_STORAGE_BLOCK_POOL_H_

#include <mutex>
#include <vector>

#include "storage/block.h"
#include "storage/storage_manager.h"

namespace uot {

/// A thread-safe pool of partially filled temporary output blocks (paper
/// Section III-A).
///
/// During a work order's execution the worker checks out a block, appends
/// output rows to it, and returns it at the end of the work order. A block
/// is therefore used by at most one work order at any time, which preserves
/// write locality and reduces fragmentation by reusing output blocks.
///
/// Quickstep's pool is global over untyped blocks; here blocks are typed by
/// an output schema so the pool is per insert destination, with identical
/// checkout/return semantics (see DESIGN.md).
class BlockPool {
 public:
  BlockPool(StorageManager* storage, const Schema* schema, Layout layout,
            size_t block_bytes, MemoryCategory category);
  UOT_DISALLOW_COPY_AND_ASSIGN(BlockPool);

  /// Returns a partially filled block if one is pooled, else a new block.
  Block* Checkout();

  /// Returns a block to the pool at the end of a work order.
  void Return(Block* block);

  /// Removes and returns every pooled block (used when an operator
  /// finishes: its partially filled outputs become ready for transfer).
  std::vector<Block*> DrainAll();

  size_t PooledCount() const;

 private:
  StorageManager* const storage_;
  const Schema* const schema_;
  const Layout layout_;
  const size_t block_bytes_;
  const MemoryCategory category_;

  mutable std::mutex mutex_;
  std::vector<Block*> pool_;
};

}  // namespace uot

#endif  // UOT_STORAGE_BLOCK_POOL_H_
