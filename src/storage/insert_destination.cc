#include "storage/insert_destination.h"

namespace uot {

InsertDestination::InsertDestination(StorageManager* storage, Table* output,
                                     BlockReadyCallback on_block_ready,
                                     MemoryCategory category)
    : storage_(storage),
      output_(output),
      pool_(storage, &output->schema(), output->layout(),
            output->block_bytes(), category),
      on_block_ready_(std::move(on_block_ready)) {}

InsertDestination::Writer::Writer(InsertDestination* dest)
    : dest_(dest), block_(dest->pool_.Checkout()) {}

InsertDestination::Writer::~Writer() {
  // End of the work order: a block that filled up exactly on the last row
  // is ready for transfer; anything else goes back to the pool.
  if (block_->Full()) {
    dest_->CompleteBlock(block_);
  } else {
    dest_->pool_.Return(block_);
  }
}

void InsertDestination::Writer::AppendRow(const std::byte* packed_row) {
  while (!block_->AppendRow(packed_row)) {
    dest_->CompleteBlock(block_);
    block_ = dest_->pool_.Checkout();
  }
}

void InsertDestination::CompleteBlock(Block* block) {
  block->set_partition(partition_);
  output_->AddBlock(block);
  blocks_completed_.fetch_add(1, std::memory_order_relaxed);
  if (on_block_ready_) on_block_ready_(block);
}

void InsertDestination::Flush() {
  for (Block* block : pool_.DrainAll()) {
    if (block->Empty()) {
      storage_->DropBlock(block);
      continue;
    }
    CompleteBlock(block);
  }
}

}  // namespace uot
