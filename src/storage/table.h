#ifndef UOT_STORAGE_TABLE_H_
#define UOT_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/block.h"
#include "storage/storage_manager.h"
#include "types/typed_value.h"

namespace uot {

/// A horizontally partitioned table: a schema plus an ordered list of
/// fixed-size blocks (paper Section III-A).
///
/// Base tables are built single-threaded via AppendRow. Temporary tables
/// (operator outputs) receive completed blocks concurrently from insert
/// destinations via AddBlock.
class Table {
 public:
  Table(std::string name, Schema schema, Layout layout, size_t block_bytes,
        StorageManager* storage, MemoryCategory category);
  ~Table();
  UOT_DISALLOW_COPY_AND_ASSIGN(Table);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  Layout layout() const { return layout_; }
  size_t block_bytes() const { return block_bytes_; }

  /// Appends one packed row, allocating blocks as needed (loader path).
  void AppendRow(const std::byte* packed_row);

  /// Appends a row of boxed values (convenience for tests/examples).
  void AppendValues(const std::vector<TypedValue>& values);

  /// Thread-safe: transfers a completed block into this table.
  void AddBlock(Block* block);

  /// Thread-safe: removes `block` from this table without destroying it
  /// (the caller owns the follow-up, e.g. StorageManager::DropBlock).
  /// Returns false if the block is not in this table.
  bool ReleaseBlock(Block* block);

  const std::vector<Block*>& blocks() const { return blocks_; }
  uint64_t NumRows() const;
  /// Total bytes across this table's blocks.
  uint64_t TotalBytes() const;

  /// Boxed value at global row index (row counted across blocks in order);
  /// O(#blocks) — for tests and result rendering only.
  TypedValue GetValue(uint64_t row, int col) const;

  /// Drops all blocks (releases their memory accounting).
  void DropBlocks();

 private:
  const std::string name_;
  const Schema schema_;
  const Layout layout_;
  const size_t block_bytes_;
  StorageManager* const storage_;
  const MemoryCategory category_;

  mutable std::mutex mutex_;
  std::vector<Block*> blocks_;
};

}  // namespace uot

#endif  // UOT_STORAGE_TABLE_H_
