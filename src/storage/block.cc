#include "storage/block.h"

namespace uot {

const char* LayoutName(Layout layout) {
  return layout == Layout::kRowStore ? "row-store" : "column-store";
}

Block::Block(BlockId id, const Schema* schema, Layout layout,
             size_t capacity_bytes)
    : id_(id), schema_(schema), layout_(layout) {
  UOT_CHECK(schema_ != nullptr && schema_->row_width() > 0);
  capacity_rows_ =
      static_cast<uint32_t>(capacity_bytes / schema_->row_width());
  UOT_CHECK(capacity_rows_ > 0);
  allocated_bytes_ = static_cast<size_t>(capacity_rows_) *
                     schema_->row_width();
  // No zero-initialization: only rows < num_rows() are ever read.
  data_ = std::make_unique_for_overwrite<std::byte[]>(allocated_bytes_);
  if (layout_ == Layout::kColumnStore) {
    column_starts_.reserve(static_cast<size_t>(schema_->num_columns()));
    size_t start = 0;
    for (int c = 0; c < schema_->num_columns(); ++c) {
      column_starts_.push_back(start);
      start += static_cast<size_t>(capacity_rows_) *
               schema_->column(c).type.width();
    }
  }
}

bool Block::AppendRow(const std::byte* packed_row) {
  if (Full()) return false;
  const uint32_t row = num_rows_;
  if (layout_ == Layout::kRowStore) {
    std::memcpy(data_.get() + static_cast<size_t>(row) * schema_->row_width(),
                packed_row, schema_->row_width());
  } else {
    for (int c = 0; c < schema_->num_columns(); ++c) {
      const uint16_t w = schema_->column(c).type.width();
      std::memcpy(data_.get() + column_starts_[static_cast<size_t>(c)] +
                      static_cast<size_t>(row) * w,
                  packed_row + schema_->offset(c), w);
    }
  }
  ++num_rows_;
  return true;
}

uint32_t Block::AppendRows(const std::byte* packed_rows, uint32_t n) {
  const uint32_t space = capacity_rows_ - num_rows_;
  const uint32_t count = n < space ? n : space;
  if (count == 0) return 0;
  if (layout_ == Layout::kRowStore) {
    std::memcpy(
        data_.get() + static_cast<size_t>(num_rows_) * schema_->row_width(),
        packed_rows, static_cast<size_t>(count) * schema_->row_width());
  } else {
    for (int c = 0; c < schema_->num_columns(); ++c) {
      const uint16_t w = schema_->column(c).type.width();
      std::byte* dst = data_.get() + column_starts_[static_cast<size_t>(c)] +
                       static_cast<size_t>(num_rows_) * w;
      const std::byte* src = packed_rows + schema_->offset(c);
      for (uint32_t i = 0; i < count; ++i) {
        std::memcpy(dst, src, w);
        dst += w;
        src += schema_->row_width();
      }
    }
  }
  num_rows_ += count;
  return count;
}

void Block::GetRow(uint32_t row, std::byte* out) const {
  UOT_DCHECK(row < num_rows_);
  if (layout_ == Layout::kRowStore) {
    std::memcpy(out,
                data_.get() + static_cast<size_t>(row) * schema_->row_width(),
                schema_->row_width());
    return;
  }
  for (int c = 0; c < schema_->num_columns(); ++c) {
    const uint16_t w = schema_->column(c).type.width();
    std::memcpy(out + schema_->offset(c),
                data_.get() + column_starts_[static_cast<size_t>(c)] +
                    static_cast<size_t>(row) * w,
                w);
  }
}

}  // namespace uot
