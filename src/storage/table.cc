#include "storage/table.h"

#include <cstring>

namespace uot {

Table::Table(std::string name, Schema schema, Layout layout,
             size_t block_bytes, StorageManager* storage,
             MemoryCategory category)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      layout_(layout),
      block_bytes_(block_bytes),
      storage_(storage),
      category_(category) {
  UOT_CHECK(storage_ != nullptr);
  UOT_CHECK(block_bytes_ >= schema_.row_width());
}

Table::~Table() { DropBlocks(); }

void Table::AppendRow(const std::byte* packed_row) {
  if (blocks_.empty() || !blocks_.back()->AppendRow(packed_row)) {
    Block* block =
        storage_->CreateBlock(&schema_, layout_, block_bytes_, category_);
    blocks_.push_back(block);
    UOT_CHECK(block->AppendRow(packed_row));
  }
}

void Table::AppendValues(const std::vector<TypedValue>& values) {
  UOT_CHECK(static_cast<int>(values.size()) == schema_.num_columns());
  std::vector<std::byte> row(schema_.row_width());
  for (int c = 0; c < schema_.num_columns(); ++c) {
    values[static_cast<size_t>(c)].CopyTo(schema_.column(c).type,
                                          row.data() + schema_.offset(c));
  }
  AppendRow(row.data());
}

void Table::AddBlock(Block* block) {
  UOT_DCHECK(block->schema() == schema_);
  std::lock_guard<std::mutex> lock(mutex_);
  blocks_.push_back(block);
}

bool Table::ReleaseBlock(Block* block) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
    if (*it == block) {
      blocks_.erase(it);
      return true;
    }
  }
  return false;
}

uint64_t Table::NumRows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t rows = 0;
  for (const Block* b : blocks_) rows += b->num_rows();
  return rows;
}

uint64_t Table::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t bytes = 0;
  for (const Block* b : blocks_) bytes += b->allocated_bytes();
  return bytes;
}

TypedValue Table::GetValue(uint64_t row, int col) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Block* b : blocks_) {
    if (row < b->num_rows()) {
      const ColumnAccess access = b->Column(col);
      return TypedValue::Load(schema_.column(col).type,
                              access.at(static_cast<uint32_t>(row)));
    }
    row -= b->num_rows();
  }
  UOT_CHECK(false);
  return TypedValue();
}

void Table::DropBlocks() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Block* b : blocks_) storage_->DropBlock(b);
  blocks_.clear();
}

}  // namespace uot
