#ifndef UOT_STORAGE_BLOCK_H_
#define UOT_STORAGE_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "types/schema.h"
#include "util/macros.h"

namespace uot {

/// Physical organization of tuples inside a block (paper Section IV-B).
enum class Layout : uint8_t {
  kRowStore = 0,
  kColumnStore = 1,
};

const char* LayoutName(Layout layout);

using BlockId = uint64_t;

/// Strided view of one column inside a block.
///
/// Both layouts expose column values at a fixed byte stride: row stores at
/// stride `row_width`, column stores at stride `column width`. Vectorized
/// operators are written once against this view.
struct ColumnAccess {
  const std::byte* base;
  uint32_t stride;

  const std::byte* at(uint32_t row) const { return base + row * stride; }
};

/// A fixed-size storage block holding tuples of one schema (paper
/// Section III-A). Base tables and temporary operator outputs are both made
/// of blocks; the block size is fixed per table but configurable.
///
/// A block is written by at most one work order at a time (enforced by the
/// BlockPool checkout protocol), so appends are not internally synchronized;
/// reads of completed rows are safe concurrently with appends because
/// `num_rows` is only published after the row bytes are in place.
class Block {
 public:
  /// Creates a block with storage for `capacity_bytes` worth of tuples.
  Block(BlockId id, const Schema* schema, Layout layout,
        size_t capacity_bytes);
  UOT_DISALLOW_COPY_AND_ASSIGN(Block);

  BlockId id() const { return id_; }
  const Schema& schema() const { return *schema_; }
  Layout layout() const { return layout_; }

  uint32_t num_rows() const { return num_rows_; }
  uint32_t capacity_rows() const { return capacity_rows_; }
  bool Full() const { return num_rows_ == capacity_rows_; }
  bool Empty() const { return num_rows_ == 0; }

  /// Hash-partition this block's rows belong to, tagged by the exchange
  /// operator's per-partition insert destination (-1 = unpartitioned).
  /// Every row of a tagged block is in the same partition, so partition-
  /// aware consumers route whole blocks to the right hash sub-table.
  int32_t partition() const { return partition_; }
  void set_partition(int32_t partition) { partition_ = partition; }

  /// Bytes of backing storage (the configured block size rounded down to a
  /// whole number of tuples).
  size_t allocated_bytes() const { return allocated_bytes_; }

  /// Appends one packed row; returns false (and appends nothing) if full.
  bool AppendRow(const std::byte* packed_row);

  /// Appends up to `n` packed rows from a contiguous packed-row array;
  /// returns how many were appended.
  uint32_t AppendRows(const std::byte* packed_rows, uint32_t n);

  /// Strided access to column `col` (valid for rows < num_rows()).
  ColumnAccess Column(int col) const {
    UOT_DCHECK(col >= 0 && col < schema_->num_columns());
    if (layout_ == Layout::kRowStore) {
      return ColumnAccess{data_.get() + schema_->offset(col),
                          schema_->row_width()};
    }
    return ColumnAccess{data_.get() + column_starts_[static_cast<size_t>(col)],
                        schema_->column(col).type.width()};
  }

  /// Extracts row `row` into `out` in packed-row format
  /// (`schema().row_width()` bytes).
  void GetRow(uint32_t row, std::byte* out) const;

  /// Clears all rows (block returns to the pool empty after a drop).
  void Clear() { num_rows_ = 0; }

 private:
  const BlockId id_;
  const Schema* schema_;  // owned by the table / destination, outlives block
  const Layout layout_;
  uint32_t capacity_rows_;
  uint32_t num_rows_ = 0;
  int32_t partition_ = -1;
  size_t allocated_bytes_;
  std::unique_ptr<std::byte[]> data_;
  // Byte offset where each column's array starts (column store only).
  std::vector<size_t> column_starts_;
};

}  // namespace uot

#endif  // UOT_STORAGE_BLOCK_H_
