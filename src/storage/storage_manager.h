#ifndef UOT_STORAGE_STORAGE_MANAGER_H_
#define UOT_STORAGE_STORAGE_MANAGER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "storage/block.h"
#include "util/memory_tracker.h"

namespace uot {

/// Owns every block in the system and accounts their memory.
///
/// Mirrors Quickstep's storage manager at the granularity this study needs:
/// block allocation, ownership, and per-category memory accounting (the
/// paper's Section VI compares hash-table vs intermediate-table footprints).
class StorageManager {
 public:
  StorageManager() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(StorageManager);

  /// Allocates a new block. The schema must outlive the block.
  Block* CreateBlock(const Schema* schema, Layout layout,
                     size_t capacity_bytes, MemoryCategory category);

  /// Releases a block's memory accounting and destroys it.
  void DropBlock(Block* block);

  MemoryTracker& tracker() { return tracker_; }
  const MemoryTracker& tracker() const { return tracker_; }

  /// Number of live (not dropped) blocks.
  size_t num_blocks() const;

 private:
  struct Entry {
    std::unique_ptr<Block> block;
    MemoryCategory category;
  };

  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  BlockId next_id_ = 1;
  MemoryTracker tracker_;
};

}  // namespace uot

#endif  // UOT_STORAGE_STORAGE_MANAGER_H_
