#include "simsched/des_scheduler.h"

#include <algorithm>
#include <deque>
#include <queue>

namespace uot {
namespace {

struct Completion {
  double time;
  int op;
  uint64_t seq;  // tie-break for determinism

  bool operator>(const Completion& other) const {
    if (time != other.time) return time > other.time;
    if (op != other.op) return op > other.op;
    return seq > other.seq;
  }
};

struct OpRuntime {
  uint64_t ready = 0;        // generated, not yet started
  uint64_t running = 0;
  uint64_t completed = 0;
  uint64_t generated = 0;
  bool producer_done = true;  // false while a streaming producer still runs
  int blocking_remaining = 0;
  uint64_t buffered_blocks = 0;  // producer blocks awaiting UoT transfer
  uint64_t produced_blocks = 0;  // total blocks the producer emitted
  uint64_t transfers_in = 0;     // UoT transfers received as a consumer
  double carry = 0.0;            // fractional consumer work orders

  // Statistics.
  double total_task = 0.0;
  double dop_time_integral = 0.0;
  double last_dop_ts = 0.0;
  double first_start = -1.0;
  double last_end = 0.0;
  bool finished = false;
};

}  // namespace

SimResult DesScheduler::Run(const std::vector<SimOperator>& ops,
                            const SimConfig& config) {
  UOT_CHECK(config.num_workers >= 1);
  const int n = static_cast<int>(ops.size());
  std::vector<OpRuntime> state(static_cast<size_t>(n));

  for (int i = 0; i < n; ++i) {
    const SimOperator& op = ops[static_cast<size_t>(i)];
    OpRuntime& s = state[static_cast<size_t>(i)];
    s.blocking_remaining = static_cast<int>(op.blocking_deps.size());
    if (op.streaming_producer < 0) {
      s.ready = op.num_work_orders;
      s.generated = op.num_work_orders;
    } else {
      s.producer_done = false;
    }
  }

  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      events;
  // Ready work orders in generation order: the engine's FIFO work queue.
  std::deque<int> ready_queue;
  int free_workers = config.num_workers;
  double now = 0.0;
  uint64_t seq = 0;

  // Enqueues `count` ready work orders of `op` unless it is still blocked
  // (blocked operators enqueue when their last dependency resolves).
  // Consumer work orders jump the queue, mirroring the engine scheduler:
  // transferred data is consumed eagerly while hot (paper Fig. 2).
  auto enqueue_ready = [&](int op, uint64_t count) {
    if (state[static_cast<size_t>(op)].blocking_remaining > 0) return;
    const bool consumer = ops[static_cast<size_t>(op)].streaming_producer >= 0;
    for (uint64_t i = 0; i < count; ++i) {
      if (consumer) {
        ready_queue.push_front(op);
      } else {
        ready_queue.push_back(op);
      }
    }
  };
  for (int i = 0; i < n; ++i) {
    enqueue_ready(i, state[static_cast<size_t>(i)].ready);
  }

  auto update_dop = [&](int op) {
    OpRuntime& s = state[static_cast<size_t>(op)];
    s.dop_time_integral +=
        static_cast<double>(s.running) * (now - s.last_dop_ts);
    s.last_dop_ts = now;
  };

  auto service_time = [&](int op) {
    const SimOperator& o = ops[static_cast<size_t>(op)];
    const double dop =
        static_cast<double>(state[static_cast<size_t>(op)].running);
    return o.work_ns * (1.0 + o.contention_alpha * (dop - 1.0)) +
           o.overhead_ns * (1.0 + o.sync_beta * (dop - 1.0));
  };

  // Dispatches ready work orders to free workers in FIFO (generation)
  // order, exactly like the engine's shared work queue.
  auto dispatch = [&] {
    while (free_workers > 0 && !ready_queue.empty()) {
      const int i = ready_queue.front();
      ready_queue.pop_front();
      OpRuntime& s = state[static_cast<size_t>(i)];
      UOT_DCHECK(s.blocking_remaining == 0 && s.ready > 0);
      update_dop(i);
      --s.ready;
      ++s.running;
      --free_workers;
      const double t = service_time(i);
      s.total_task += t;
      if (s.first_start < 0) s.first_start = now;
      events.push(Completion{now + t, i, seq++});
    }
  };

  // Transfers buffered producer blocks to the consumer per the UoT policy.
  auto maybe_transfer = [&](int producer, bool final_flush) {
    for (int i = 0; i < n; ++i) {
      const SimOperator& o = ops[static_cast<size_t>(i)];
      if (o.streaming_producer != producer) continue;
      OpRuntime& prod = state[static_cast<size_t>(producer)];
      OpRuntime& cons = state[static_cast<size_t>(i)];
      uint64_t k;
      if (config.uot_policy != nullptr) {
        EdgeRuntimeState rt;
        rt.edge_index = i;
        rt.producer = producer;
        rt.consumer = i;
        rt.buffered_blocks = prod.buffered_blocks;
        rt.produced_blocks = prod.produced_blocks;
        rt.transfers = cons.transfers_in;
        rt.producer_finished = final_flush;
        rt.producer_work_orders_done = prod.completed;
        rt.consumer_work_orders_done = cons.completed;
        k = config.uot_policy->BlocksPerTransfer(rt);
        UOT_CHECK(k != 0);  // a zero UoT is a policy bug
      } else {
        k = config.uot.blocks_per_transfer();
      }
      if (k == UotPolicy::kWholeTable) k = UINT64_MAX;
      while (prod.buffered_blocks >= k ||
             (final_flush && prod.buffered_blocks > 0)) {
        const uint64_t batch = std::min(prod.buffered_blocks, k);
        prod.buffered_blocks -= batch;
        ++cons.transfers_in;
        cons.carry +=
            static_cast<double>(batch) * o.consumer_wo_per_block;
        const uint64_t whole = static_cast<uint64_t>(cons.carry);
        cons.carry -= static_cast<double>(whole);
        cons.ready += whole;
        cons.generated += whole;
        enqueue_ready(i, whole);
        if (batch < k && !final_flush) break;
      }
      if (final_flush) {
        // Round the fractional remainder into a final work order.
        if (cons.carry > 1e-9) {
          cons.ready += 1;
          cons.generated += 1;
          enqueue_ready(i, 1);
          cons.carry = 0.0;
        }
        cons.producer_done = true;
      }
    }
  };

  // An operator is complete when its work orders are exhausted and its
  // producer (if any) has finished.
  auto check_finished = [&](int op, auto&& self) -> void {
    OpRuntime& s = state[static_cast<size_t>(op)];
    if (s.finished) return;
    if (!s.producer_done || s.ready > 0 || s.running > 0) return;
    const SimOperator& o = ops[static_cast<size_t>(op)];
    if (o.streaming_producer < 0 && s.completed < s.generated) return;
    s.finished = true;
    s.last_end = now;
    maybe_transfer(op, /*final_flush=*/true);
    for (int i = 0; i < n; ++i) {
      const SimOperator& other = ops[static_cast<size_t>(i)];
      for (int dep : other.blocking_deps) {
        if (dep == op) {
          OpRuntime& blocked = state[static_cast<size_t>(i)];
          --blocked.blocking_remaining;
          if (blocked.blocking_remaining == 0) {
            enqueue_ready(i, blocked.ready);
          }
        }
      }
      // A consumer whose producer just finished may itself now be done
      // (e.g. empty input).
      if (other.streaming_producer == op) self(i, self);
    }
  };

  // Alternates dispatching and completion checks until a fixpoint: finish
  // cascades (empty inputs, final flushes) are at most `n` deep.
  auto settle = [&] {
    for (int pass = 0; pass < n + 2; ++pass) {
      dispatch();
      for (int i = 0; i < n; ++i) check_finished(i, check_finished);
    }
    dispatch();
  };

  settle();
  while (!events.empty()) {
    const Completion ev = events.top();
    events.pop();
    now = ev.time;
    OpRuntime& s = state[static_cast<size_t>(ev.op)];
    update_dop(ev.op);
    --s.running;
    ++s.completed;
    ++free_workers;
    s.last_end = now;
    // Each completed work order of a streaming producer emits one block.
    s.buffered_blocks += 1;
    s.produced_blocks += 1;
    maybe_transfer(ev.op, /*final_flush=*/false);
    settle();
  }

  SimResult result;
  result.makespan_ns = now;
  for (int i = 0; i < n; ++i) {
    const OpRuntime& s = state[static_cast<size_t>(i)];
    const SimOperator& o = ops[static_cast<size_t>(i)];
    SimOperatorResult r;
    r.name = o.name;
    r.work_orders = s.completed;
    r.total_task_ns = s.total_task;
    r.avg_task_ns = s.completed == 0
                        ? 0.0
                        : s.total_task / static_cast<double>(s.completed);
    const double span = s.last_end - (s.first_start < 0 ? 0 : s.first_start);
    r.avg_dop = span > 0 ? s.dop_time_integral / span : 0.0;
    r.first_start_ns = s.first_start < 0 ? 0.0 : s.first_start;
    r.last_end_ns = s.last_end;
    result.operators.push_back(std::move(r));
  }
  return result;
}

}  // namespace uot
