#ifndef UOT_SIMSCHED_DES_SCHEDULER_H_
#define UOT_SIMSCHED_DES_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "scheduler/uot_policy.h"
#include "util/macros.h"

namespace uot {

/// One operator in the simulated plan.
///
/// The discrete-event simulator reproduces the *scheduling* behavior of the
/// engine on a machine with `num_workers` true cores — the substitute for
/// the paper's 20-core evaluation box (Figs. 9/10; see DESIGN.md). Service
/// times come from a per-operator base cost plus a contention model:
///
///   service(dop) = work_ns * (1 + contention_alpha * (dop - 1))
///                  + overhead_ns * (1 + sync_beta * (dop - 1))
///
/// `work_ns` is the useful per-work-order work (scales with block size),
/// `overhead_ns` the fixed storage-management/scheduling cost per work
/// order, `contention_alpha` the interference slope (large shared hash
/// tables -> larger alpha), and `sync_beta` the slope of synchronization
/// cost in the storage-management subsystem (shrinks as blocks grow).
struct SimOperator {
  std::string name;
  /// Number of work orders (for leaf operators). Consumers derive their
  /// work orders from producer output instead.
  uint64_t num_work_orders = 0;
  double work_ns = 1e6;
  double overhead_ns = 0.0;
  double contention_alpha = 0.0;
  double sync_beta = 0.0;

  /// Index of the operator whose completed work orders feed this one
  /// (one output block per producer work order), or -1 for leaves.
  int streaming_producer = -1;
  /// Consumer work orders created per transferred producer block.
  double consumer_wo_per_block = 1.0;
  /// Operators that must fully finish before this one may start.
  std::vector<int> blocking_deps;
};

struct SimConfig {
  int num_workers = 20;
  /// Session-default UoT, applied to every edge when `uot_policy` is null
  /// (the scalar semantics).
  UotPolicy uot;
  /// Optional per-edge policy, consulted with the simulated edge's runtime
  /// state whenever buffered producer blocks might transfer — the same
  /// interface the real scheduler consults (scheduler/uot_policy.h). The
  /// edge index reported to the policy is the consumer operator's index
  /// (each simulated consumer has exactly one streaming input). Not owned.
  EdgeUotPolicy* uot_policy = nullptr;
};

/// Per-operator simulation outcome.
struct SimOperatorResult {
  std::string name;
  uint64_t work_orders = 0;
  double total_task_ns = 0.0;
  double avg_task_ns = 0.0;
  double avg_dop = 0.0;  // time-averaged degree of parallelism while active
  double first_start_ns = 0.0;
  double last_end_ns = 0.0;
};

struct SimResult {
  double makespan_ns = 0.0;
  std::vector<SimOperatorResult> operators;

  double makespan_ms() const { return makespan_ns / 1e6; }
};

/// Deterministic discrete-event simulation of the work-order scheduler.
class DesScheduler {
 public:
  /// Runs the plan to completion and returns timing statistics.
  static SimResult Run(const std::vector<SimOperator>& ops,
                       const SimConfig& config);
};

}  // namespace uot

#endif  // UOT_SIMSCHED_DES_SCHEDULER_H_
