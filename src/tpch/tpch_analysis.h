#ifndef UOT_TPCH_TPCH_ANALYSIS_H_
#define UOT_TPCH_TPCH_ANALYSIS_H_

#include <string>
#include <vector>

#include "tpch/tpch_generator.h"
#include "tpch/tpch_queries.h"

namespace uot {

/// One row of the paper's Tables III/IV: how much a query's selection on a
/// big base table reduces the materialized intermediate, split into
/// selectivity and projectivity (Section VI-A/VI-C).
struct ReductionRow {
  int query = 0;
  uint64_t input_rows = 0;
  uint64_t selected_rows = 0;
  double selectivity = 0.0;   // fraction
  double projectivity = 0.0;  // fraction
  double total = 0.0;         // selectivity * projectivity
};

/// Evaluates the selection of `query` on `table_name` over the generated
/// data and returns the reduction metrics.
ReductionRow AnalyzeReduction(const TpchDatabase& db, int query,
                              const std::string& table_name);

/// Table III: queries with a selection+probe pipeline on lineitem.
std::vector<ReductionRow> AnalyzeLineitemReductions(const TpchDatabase& db);

/// Table IV: queries with a selection+probe pipeline on orders.
std::vector<ReductionRow> AnalyzeOrdersReductions(const TpchDatabase& db);

/// Renders rows in the paper's table format.
std::string RenderReductionTable(const std::vector<ReductionRow>& rows,
                                 const std::string& table_name);

}  // namespace uot

#endif  // UOT_TPCH_TPCH_ANALYSIS_H_
