#include "tpch/tpch_schema.h"

namespace uot {

Schema LineitemSchema() {
  return Schema({
      {"l_orderkey", Type::Int64()},
      {"l_partkey", Type::Int32()},
      {"l_suppkey", Type::Int32()},
      {"l_linenumber", Type::Int32()},
      {"l_quantity", Type::Double()},
      {"l_extendedprice", Type::Double()},
      {"l_discount", Type::Double()},
      {"l_tax", Type::Double()},
      {"l_returnflag", Type::Char(1)},
      {"l_linestatus", Type::Char(1)},
      {"l_shipdate", Type::Date()},
      {"l_commitdate", Type::Date()},
      {"l_receiptdate", Type::Date()},
      {"l_shipinstruct", Type::Char(25)},
      {"l_shipmode", Type::Char(10)},
      {"l_comment", Type::Char(44)},
  });
}

Schema OrdersSchema() {
  return Schema({
      {"o_orderkey", Type::Int64()},
      {"o_custkey", Type::Int32()},
      {"o_orderstatus", Type::Char(1)},
      {"o_totalprice", Type::Double()},
      {"o_orderdate", Type::Date()},
      {"o_orderpriority", Type::Char(15)},
      {"o_clerk", Type::Char(15)},
      {"o_shippriority", Type::Int32()},
      {"o_comment", Type::Char(49)},
  });
}

Schema CustomerSchema() {
  return Schema({
      {"c_custkey", Type::Int32()},
      {"c_name", Type::Char(25)},
      {"c_address", Type::Char(25)},
      {"c_nationkey", Type::Int32()},
      {"c_phone", Type::Char(15)},
      {"c_acctbal", Type::Double()},
      {"c_mktsegment", Type::Char(10)},
      {"c_comment", Type::Char(30)},
  });
}

Schema PartSchema() {
  return Schema({
      {"p_partkey", Type::Int32()},
      {"p_name", Type::Char(35)},
      {"p_mfgr", Type::Char(25)},
      {"p_brand", Type::Char(10)},
      {"p_type", Type::Char(25)},
      {"p_size", Type::Int32()},
      {"p_container", Type::Char(10)},
      {"p_retailprice", Type::Double()},
      {"p_comment", Type::Char(23)},
  });
}

Schema SupplierSchema() {
  return Schema({
      {"s_suppkey", Type::Int32()},
      {"s_name", Type::Char(25)},
      {"s_address", Type::Char(25)},
      {"s_nationkey", Type::Int32()},
      {"s_phone", Type::Char(15)},
      {"s_acctbal", Type::Double()},
      {"s_comment", Type::Char(40)},
  });
}

Schema PartsuppSchema() {
  return Schema({
      {"ps_partkey", Type::Int32()},
      {"ps_suppkey", Type::Int32()},
      {"ps_availqty", Type::Int32()},
      {"ps_supplycost", Type::Double()},
      {"ps_comment", Type::Char(40)},
  });
}

Schema NationSchema() {
  return Schema({
      {"n_nationkey", Type::Int32()},
      {"n_name", Type::Char(25)},
      {"n_regionkey", Type::Int32()},
      {"n_comment", Type::Char(55)},
  });
}

Schema RegionSchema() {
  return Schema({
      {"r_regionkey", Type::Int32()},
      {"r_name", Type::Char(25)},
      {"r_comment", Type::Char(55)},
  });
}

}  // namespace uot
