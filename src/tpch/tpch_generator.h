#ifndef UOT_TPCH_TPCH_GENERATOR_H_
#define UOT_TPCH_TPCH_GENERATOR_H_

#include <memory>
#include <string>

#include "storage/table.h"
#include "tpch/tpch_schema.h"
#include "util/random.h"

namespace uot {

/// Generation parameters for the built-in TPC-H data generator (the dbgen
/// substitute; see DESIGN.md). Scale factor 1.0 corresponds to ~6M lineitem
/// rows as in the spec; benches default to laptop scales (0.01 - 0.1).
struct TpchConfig {
  double scale_factor = 0.01;
  Layout layout = Layout::kColumnStore;
  size_t block_bytes = 1 << 20;
  uint64_t seed = 42;
};

/// An in-memory TPC-H database: the eight base tables in the configured
/// layout and block size.
class TpchDatabase {
 public:
  explicit TpchDatabase(StorageManager* storage) : storage_(storage) {}
  UOT_DISALLOW_COPY_AND_ASSIGN(TpchDatabase);

  /// Generates all eight tables. Deterministic for a given config.
  void Generate(const TpchConfig& config);

  const TpchConfig& config() const { return config_; }
  StorageManager* storage() const { return storage_; }

  const Table& lineitem() const { return *lineitem_; }
  const Table& orders() const { return *orders_; }
  const Table& customer() const { return *customer_; }
  const Table& part() const { return *part_; }
  const Table& supplier() const { return *supplier_; }
  const Table& partsupp() const { return *partsupp_; }
  const Table& nation() const { return *nation_; }
  const Table& region() const { return *region_; }

  /// Lookup by lower-case table name; nullptr if unknown.
  const Table* table(const std::string& name) const;

  /// The "current date" constant used for return flags (spec: 1995-06-17).
  static int32_t CurrentDate();

 private:
  StorageManager* const storage_;
  TpchConfig config_;
  std::unique_ptr<Table> lineitem_;
  std::unique_ptr<Table> orders_;
  std::unique_ptr<Table> customer_;
  std::unique_ptr<Table> part_;
  std::unique_ptr<Table> supplier_;
  std::unique_ptr<Table> partsupp_;
  std::unique_ptr<Table> nation_;
  std::unique_ptr<Table> region_;
};

}  // namespace uot

#endif  // UOT_TPCH_TPCH_GENERATOR_H_
