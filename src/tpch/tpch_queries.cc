#include "tpch/tpch_queries.h"

#include <type_traits>
#include <utility>

#include "operators/aggregate_operator.h"
#include "operators/build_hash_operator.h"
#include "operators/probe_hash_operator.h"
#include "operators/select_operator.h"
#include "operators/sort_operator.h"
#include "types/date.h"

namespace uot {
namespace {

using tpch::CustomerCol;
using tpch::LineitemCol;
using tpch::NationCol;
using tpch::OrdersCol;
using tpch::PartCol;
using tpch::RegionCol;
using tpch::SupplierCol;

// ---- expression shorthands ----

/// Builds a vector from move-only elements (initializer lists cannot move).
/// Used for expression lists (std::unique_ptr<Scalar>) and AggSpec lists.
template <typename T0, typename... Ts>
auto MakeVec(T0 first, Ts... rest) {
  using Elem =
      std::conditional_t<std::is_same_v<std::decay_t<T0>, AggSpec>, AggSpec,
                         std::unique_ptr<Scalar>>;
  std::vector<Elem> v;
  v.reserve(1 + sizeof...(rest));
  v.push_back(std::move(first));
  (v.push_back(std::move(rest)), ...);
  return v;
}

/// Companion to MakeVec for predicate lists.
template <typename... Ts>
std::vector<std::unique_ptr<Predicate>> MakePreds(Ts... preds) {
  std::vector<std::unique_ptr<Predicate>> v;
  v.reserve(sizeof...(preds));
  (v.push_back(std::move(preds)), ...);
  return v;
}

std::unique_ptr<Scalar> C(const Schema& s, int col) {
  return Col(col, s.column(col).type);
}

std::unique_ptr<Predicate> CmpCL(const Schema& s, int col, CompareOp op,
                                 TypedValue v) {
  return Cmp(op, C(s, col), Lit(std::move(v), s.column(col).type));
}

std::unique_ptr<Predicate> CharEq(const Schema& s, int col,
                                  const std::string& v) {
  return CmpCL(s, col, CompareOp::kEq, TypedValue::Char(v));
}

std::unique_ptr<Predicate> CharIn(const Schema& s, int col,
                                  std::vector<std::string> vals) {
  std::vector<TypedValue> values;
  values.reserve(vals.size());
  for (std::string& v : vals) values.push_back(TypedValue::Char(std::move(v)));
  return std::make_unique<InList>(C(s, col), std::move(values));
}

std::unique_ptr<Predicate> Int32In(const Schema& s, int col,
                                   std::vector<int32_t> vals) {
  std::vector<TypedValue> values;
  values.reserve(vals.size());
  for (int32_t v : vals) values.push_back(TypedValue::Int32(v));
  return std::make_unique<InList>(C(s, col), std::move(values));
}

std::unique_ptr<Predicate> DateIn(const Schema& s, int col, int32_t lo_incl,
                                  int32_t hi_excl) {
  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(CmpCL(s, col, CompareOp::kGe, TypedValue::Date(lo_incl)));
  parts.push_back(CmpCL(s, col, CompareOp::kLt, TypedValue::Date(hi_excl)));
  return And(std::move(parts));
}

/// l_extendedprice * (1 - l_discount) — with the expression folded into the
/// selection so only one 8-byte column is projected (Section VI-C's
/// projectivity-lowering technique).
std::unique_ptr<Scalar> Revenue(const Schema& lineitem) {
  return Mul(C(lineitem, LineitemCol::kLExtendedprice),
             Sub(LitDouble(1.0), C(lineitem, LineitemCol::kLDiscount)));
}

std::unique_ptr<Projection> Proj(std::vector<std::unique_ptr<Scalar>> exprs,
                                 std::vector<std::string> names) {
  return std::make_unique<Projection>(std::move(exprs), std::move(names));
}

AggSpec Agg(AggFn fn, std::unique_ptr<Scalar> expr, std::string name) {
  return AggSpec{fn, std::move(expr), std::move(name)};
}

// ---- shared selection specs (plans + Tables III/IV analysis) ----

std::unique_ptr<Predicate> LineitemSelectionPredicate(int query) {
  const Schema s = LineitemSchema();
  switch (query) {
    case 3:
      return CmpCL(s, LineitemCol::kLShipdate, CompareOp::kGt,
                   TypedValue::Date(MakeDate(1995, 3, 15)));
    case 7:
      return DateIn(s, LineitemCol::kLShipdate, MakeDate(1995, 1, 1),
                    MakeDate(1997, 1, 1));
    case 10:
      return CharEq(s, LineitemCol::kLReturnflag, "R");
    case 19: {
      std::vector<std::unique_ptr<Predicate>> parts;
      parts.push_back(CharIn(s, LineitemCol::kLShipmode, {"AIR", "AIR REG"}));
      parts.push_back(
          CharEq(s, LineitemCol::kLShipinstruct, "DELIVER IN PERSON"));
      parts.push_back(CmpCL(s, LineitemCol::kLQuantity, CompareOp::kGe,
                            TypedValue::Double(1.0)));
      parts.push_back(CmpCL(s, LineitemCol::kLQuantity, CompareOp::kLe,
                            TypedValue::Double(30.0)));
      return And(std::move(parts));
    }
    default:
      UOT_CHECK(false);
      return nullptr;
  }
}

double LineitemSelectionProjectedBytes(int query) {
  switch (query) {
    case 3:
      return 16;  // l_orderkey, revenue (folded expression)
    case 7:
      return 24;  // l_orderkey, l_suppkey, volume, l_year
    case 10:
      return 16;  // l_orderkey, revenue
    case 19:
      return 20;  // l_partkey, l_quantity, revenue
    default:
      UOT_CHECK(false);
      return 0;
  }
}

std::unique_ptr<Predicate> OrdersSelectionPredicate(int query) {
  const Schema s = OrdersSchema();
  switch (query) {
    case 3:
      return CmpCL(s, OrdersCol::kOOrderdate, CompareOp::kLt,
                   TypedValue::Date(MakeDate(1995, 3, 15)));
    case 4:
      return DateIn(s, OrdersCol::kOOrderdate, MakeDate(1993, 7, 1),
                    MakeDate(1993, 10, 1));
    case 5:
      return DateIn(s, OrdersCol::kOOrderdate, MakeDate(1994, 1, 1),
                    MakeDate(1995, 1, 1));
    case 8:
      return DateIn(s, OrdersCol::kOOrderdate, MakeDate(1995, 1, 1),
                    MakeDate(1997, 1, 1));
    case 10:
      return DateIn(s, OrdersCol::kOOrderdate, MakeDate(1993, 10, 1),
                    MakeDate(1994, 1, 1));
    case 21:
      return CharEq(s, OrdersCol::kOOrderstatus, "F");
    default:
      UOT_CHECK(false);
      return nullptr;
  }
}

double OrdersSelectionProjectedBytes(int query) {
  switch (query) {
    case 3:
    case 5:
    case 10:
      return 12;  // o_orderkey, o_custkey
    case 4:
      return 16;  // o_orderkey, priority prefix
    case 8:
      return 16;  // o_orderkey, o_custkey, o_year
    case 21:
      return 8;  // o_orderkey
    default:
      UOT_CHECK(false);
      return 0;
  }
}

// ---- per-query plans ----

std::unique_ptr<QueryPlan> BuildQ1(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& l = db.lineitem().schema();
  std::vector<AggSpec> aggs;
  aggs.push_back(Agg(AggFn::kSum, C(l, LineitemCol::kLQuantity), "sum_qty"));
  aggs.push_back(Agg(AggFn::kSum, C(l, LineitemCol::kLExtendedprice),
                     "sum_base_price"));
  aggs.push_back(Agg(AggFn::kSum, Revenue(l), "sum_disc_price"));
  aggs.push_back(
      Agg(AggFn::kSum,
          Mul(Revenue(l), Add(LitDouble(1.0), C(l, LineitemCol::kLTax))),
          "sum_charge"));
  aggs.push_back(Agg(AggFn::kAvg, C(l, LineitemCol::kLQuantity), "avg_qty"));
  aggs.push_back(
      Agg(AggFn::kAvg, C(l, LineitemCol::kLExtendedprice), "avg_price"));
  aggs.push_back(Agg(AggFn::kAvg, C(l, LineitemCol::kLDiscount), "avg_disc"));
  aggs.push_back(Agg(AggFn::kCount, nullptr, "count_order"));
  auto agg = b.Aggregate(
      "agg(lineitem)", PlanBuilder::Base(db.lineitem()),
      {LineitemCol::kLReturnflag, LineitemCol::kLLinestatus}, std::move(aggs),
      CmpCL(l, LineitemCol::kLShipdate, CompareOp::kLe,
            TypedValue::Date(MakeDate(1998, 12, 1) - 90)));
  auto sorted = b.Sort("sort", agg, {{0, true}, {1, true}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ3(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& c = db.customer().schema();
  const Schema& o = db.orders().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_cust = b.Select(
      "sel(customer)", PlanBuilder::Base(db.customer()),
      CharEq(c, CustomerCol::kCMktsegment, "BUILDING"),
      Proj(MakeVec(C(c, CustomerCol::kCCustkey)), {"c_custkey"}));
  auto* ht_cust = b.Build("build(customer)", sel_cust, {0}, {});

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      OrdersSelectionPredicate(3),
      Proj(MakeVec(C(o, OrdersCol::kOOrderkey), C(o, OrdersCol::kOCustkey)),
           {"o_orderkey", "o_custkey"}));
  auto probe_cust =
      b.Probe("probe(customer)", sel_ord, ht_cust, {1}, {0});
  auto* ht_ord = b.Build("build(orders)", probe_cust, {0}, {});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      LineitemSelectionPredicate(3),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey), Revenue(l)),
           {"l_orderkey", "revenue"}),
      {{ht_ord, LineitemCol::kLOrderkey}});
  auto probe_ord = b.Probe("probe(orders)", sel_li, ht_ord, {0}, {0, 1});
  auto agg = b.Aggregate(
      "agg", probe_ord, {0},
      MakeVec(Agg(AggFn::kSum, Col(1, Type::Double()), "revenue")));
  auto sorted = b.Sort("sort", agg, {{1, false}}, 10);
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ4(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& o = db.orders().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      Cmp(CompareOp::kLt, C(l, LineitemCol::kLCommitdate),
          C(l, LineitemCol::kLReceiptdate)),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey)), {"l_orderkey"}));
  auto* ht_li = b.Build("build(lineitem)", sel_li, {0}, {});

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      OrdersSelectionPredicate(4),
      Proj(MakeVec(C(o, OrdersCol::kOOrderkey),
                   std::make_unique<Substring>(
                       C(o, OrdersCol::kOOrderpriority), 0, 8)),
           {"o_orderkey", "o_priority"}));
  auto semi = b.Probe("probe(lineitem) semi", sel_ord, ht_li, {0}, {1},
                      JoinKind::kLeftSemi);
  auto agg = b.Aggregate("agg", semi, {0},
                         MakeVec(Agg(AggFn::kCount, nullptr, "order_count")));
  auto sorted = b.Sort("sort", agg, {{0, true}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ5(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& r = db.region().schema();
  const Schema& n = db.nation().schema();
  const Schema& c = db.customer().schema();
  const Schema& o = db.orders().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_reg = b.Select(
      "sel(region)", PlanBuilder::Base(db.region()),
      CharEq(r, RegionCol::kRName, "ASIA"),
      Proj(MakeVec(C(r, RegionCol::kRRegionkey)), {"r_regionkey"}));
  auto* ht_reg = b.Build("build(region)", sel_reg, {0}, {});

  auto sel_nat = b.Select(
      "sel(nation)", PlanBuilder::Base(db.nation()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(n, NationCol::kNNationkey),
                   C(n, NationCol::kNRegionkey)),
           {"n_nationkey", "n_regionkey"}));
  auto asia_nat = b.Probe("probe(region)", sel_nat, ht_reg, {1}, {0});
  auto* ht_nat = b.Build("build(nation)", asia_nat, {0}, {});

  auto sel_cust = b.Select(
      "sel(customer)", PlanBuilder::Base(db.customer()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(c, CustomerCol::kCCustkey),
                   C(c, CustomerCol::kCNationkey)),
           {"c_custkey", "c_nationkey"}));
  auto asia_cust = b.Probe("probe(nation)", sel_cust, ht_nat, {1}, {0, 1});
  auto* ht_cust = b.Build("build(customer)", asia_cust, {0}, {1});

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      OrdersSelectionPredicate(5),
      Proj(MakeVec(C(o, OrdersCol::kOOrderkey), C(o, OrdersCol::kOCustkey)),
           {"o_orderkey", "o_custkey"}));
  auto ord_nat = b.Probe("probe(customer)", sel_ord, ht_cust, {1}, {0});
  auto* ht_ord = b.Build("build(orders)", ord_nat, {0}, {1});

  auto* ht_sup = b.Build("build(supplier)", PlanBuilder::Base(db.supplier()),
                         {SupplierCol::kSSuppkey},
                         {SupplierCol::kSNationkey});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey),
                   C(l, LineitemCol::kLSuppkey), Revenue(l)),
           {"l_orderkey", "l_suppkey", "revenue"}),
      {{ht_ord, LineitemCol::kLOrderkey}});
  // -> [l_suppkey, revenue, c_nationkey]
  auto li_ord = b.Probe("probe(orders)", sel_li, ht_ord, {0}, {1, 2});
  // supplier nation must equal customer nation (the paper's LIP-style
  // residual would prune here).
  auto li_sup =
      b.Probe("probe(supplier)", li_ord, ht_sup, {0}, {1, 2},
              JoinKind::kInner,
              {ResidualCondition{2, 0, CompareOp::kEq}});
  auto agg = b.Aggregate(
      "agg", li_sup, {1},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "revenue")));
  auto sorted = b.Sort("sort", agg, {{1, false}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ6(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& l = db.lineitem().schema();
  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(DateIn(l, LineitemCol::kLShipdate, MakeDate(1994, 1, 1),
                         MakeDate(1995, 1, 1)));
  parts.push_back(CmpCL(l, LineitemCol::kLDiscount, CompareOp::kGe,
                        TypedValue::Double(0.05)));
  parts.push_back(CmpCL(l, LineitemCol::kLDiscount, CompareOp::kLe,
                        TypedValue::Double(0.07)));
  parts.push_back(CmpCL(l, LineitemCol::kLQuantity, CompareOp::kLt,
                        TypedValue::Double(24.0)));
  auto agg = b.Aggregate(
      "agg(lineitem)", PlanBuilder::Base(db.lineitem()), {},
      MakeVec(Agg(AggFn::kSum,
                  Mul(C(l, LineitemCol::kLExtendedprice),
                      C(l, LineitemCol::kLDiscount)),
                  "revenue")),
      And(std::move(parts)));
  return b.Finish(agg);
}

std::unique_ptr<QueryPlan> BuildQ7(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& s = db.supplier().schema();
  const Schema& c = db.customer().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      Int32In(s, SupplierCol::kSNationkey,
              {tpch::kNationFrance, tpch::kNationGermany}),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey),
                   C(s, SupplierCol::kSNationkey)),
           {"s_suppkey", "s_nationkey"}));
  auto* ht_sup = b.Build("build(supplier)", sel_sup, {0}, {1});

  // The paper's Q7 anchor: the second hash table is built on the *entire*
  // orders table (Section VI-C).
  auto* ht_ord = b.Build("build(orders)", PlanBuilder::Base(db.orders()),
                         {OrdersCol::kOOrderkey}, {OrdersCol::kOCustkey});

  auto sel_cust = b.Select(
      "sel(customer)", PlanBuilder::Base(db.customer()),
      Int32In(c, CustomerCol::kCNationkey,
              {tpch::kNationFrance, tpch::kNationGermany}),
      Proj(MakeVec(C(c, CustomerCol::kCCustkey),
                   C(c, CustomerCol::kCNationkey)),
           {"c_custkey", "c_nationkey"}));
  auto* ht_cust = b.Build("build(customer)", sel_cust, {0}, {1});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      LineitemSelectionPredicate(7),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey),
                   C(l, LineitemCol::kLSuppkey), Revenue(l),
                   std::make_unique<ExtractYear>(
                       C(l, LineitemCol::kLShipdate))),
           {"l_orderkey", "l_suppkey", "volume", "l_year"}),
      {{ht_sup, LineitemCol::kLSuppkey}});
  // -> [l_orderkey, volume, l_year, s_nationkey]
  auto p1 = b.Probe("probe(supplier)", sel_li, ht_sup, {1}, {0, 2, 3});
  // -> [volume, l_year, s_nationkey, o_custkey]
  auto p2 = b.Probe("probe(orders)", p1, ht_ord, {0}, {1, 2, 3});
  // Customer nation differs from supplier nation (both are in {FR, DE}).
  // -> [volume, l_year, s_nationkey, c_nationkey]
  auto p3 = b.Probe("probe(customer)", p2, ht_cust, {3}, {0, 1, 2},
                    JoinKind::kInner,
                    {ResidualCondition{2, 0, CompareOp::kNe}});
  auto agg = b.Aggregate(
      "agg", p3, {2, 1},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "revenue")));
  auto sorted = b.Sort("sort", agg, {{0, true}, {1, true}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ8(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& p = db.part().schema();
  const Schema& n = db.nation().schema();
  const Schema& c = db.customer().schema();
  const Schema& o = db.orders().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()),
      CharEq(p, PartCol::kPType, "ECONOMY ANODIZED STEEL"),
      Proj(MakeVec(C(p, PartCol::kPPartkey)), {"p_partkey"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {});

  auto* ht_sup = b.Build("build(supplier)", PlanBuilder::Base(db.supplier()),
                         {SupplierCol::kSSuppkey},
                         {SupplierCol::kSNationkey});

  auto sel_nat = b.Select(
      "sel(nation)", PlanBuilder::Base(db.nation()),
      CmpCL(n, NationCol::kNRegionkey, CompareOp::kEq,
            TypedValue::Int32(tpch::kRegionAmerica)),
      Proj(MakeVec(C(n, NationCol::kNNationkey)), {"n_nationkey"}));
  auto* ht_nat = b.Build("build(nation)", sel_nat, {0}, {});

  auto sel_cust = b.Select(
      "sel(customer)", PlanBuilder::Base(db.customer()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(c, CustomerCol::kCCustkey),
                   C(c, CustomerCol::kCNationkey)),
           {"c_custkey", "c_nationkey"}));
  auto america_cust = b.Probe("probe(nation)", sel_cust, ht_nat, {1}, {0});
  auto* ht_cust = b.Build("build(customer)", america_cust, {0}, {});

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      OrdersSelectionPredicate(8),
      Proj(MakeVec(C(o, OrdersCol::kOOrderkey), C(o, OrdersCol::kOCustkey),
                   std::make_unique<ExtractYear>(
                       C(o, OrdersCol::kOOrderdate))),
           {"o_orderkey", "o_custkey", "o_year"}));
  auto ord_am = b.Probe("probe(customer)", sel_ord, ht_cust, {1}, {0, 2});
  auto* ht_ord = b.Build("build(orders)", ord_am, {0}, {1});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey),
                   C(l, LineitemCol::kLPartkey),
                   C(l, LineitemCol::kLSuppkey), Revenue(l)),
           {"l_orderkey", "l_partkey", "l_suppkey", "volume"}),
      {{ht_part, LineitemCol::kLPartkey},
       {ht_ord, LineitemCol::kLOrderkey}});
  // -> [l_orderkey, l_suppkey, volume]
  auto p1 = b.Probe("probe(part)", sel_li, ht_part, {1}, {0, 2, 3});
  // -> [l_suppkey, volume, o_year]
  auto p2 = b.Probe("probe(orders)", p1, ht_ord, {0}, {1, 2});
  // -> [volume, o_year, s_nationkey]
  auto p3 = b.Probe("probe(supplier)", p2, ht_sup, {0}, {1, 2});
  // mkt_share numerator and denominator (the reader divides; the engine
  // has no cross-aggregate arithmetic).
  const Schema& j = b.SchemaOf(p3);
  auto brazil = std::make_unique<CaseWhen>(
      CmpCL(j, 2, CompareOp::kEq, TypedValue::Int32(tpch::kNationBrazil)),
      C(j, 0), LitDouble(0.0));
  auto agg = b.Aggregate(
      "agg", p3, {1},
      MakeVec(Agg(AggFn::kSum, std::move(brazil), "brazil_volume"),
              Agg(AggFn::kSum, Col(0, Type::Double()), "total_volume")));
  auto sorted = b.Sort("sort", agg, {{0, true}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ10(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& o = db.orders().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      OrdersSelectionPredicate(10),
      Proj(MakeVec(C(o, OrdersCol::kOOrderkey), C(o, OrdersCol::kOCustkey)),
           {"o_orderkey", "o_custkey"}));
  auto* ht_ord = b.Build("build(orders)", sel_ord, {0}, {1});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      LineitemSelectionPredicate(10),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey), Revenue(l)),
           {"l_orderkey", "revenue"}),
      {{ht_ord, LineitemCol::kLOrderkey}});
  // -> [revenue, o_custkey]
  auto probe = b.Probe("probe(orders)", sel_li, ht_ord, {0}, {1});
  auto agg = b.Aggregate(
      "agg", probe, {1},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "revenue")));
  auto sorted = b.Sort("sort", agg, {{1, false}}, 20);
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ13(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& o = db.orders().schema();

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      std::make_unique<Like>(C(o, OrdersCol::kOComment),
                             "%special%requests%", /*negated=*/true),
      Proj(MakeVec(C(o, OrdersCol::kOCustkey)), {"o_custkey"}));
  auto per_cust = b.Aggregate(
      "agg(per-customer)", sel_ord, {0},
      MakeVec(Agg(AggFn::kCount, nullptr, "c_count")));
  auto hist = b.Aggregate(
      "agg(histogram)", per_cust, {1},
      MakeVec(Agg(AggFn::kCount, nullptr, "custdist")));
  auto sorted = b.Sort("sort", hist, {{1, false}, {0, false}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ14(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& p = db.part().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()),
      std::make_unique<Like>(C(p, PartCol::kPType), "PROMO%",
                             /*negated=*/false),
      Proj(MakeVec(C(p, PartCol::kPPartkey)), {"p_partkey"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      DateIn(l, LineitemCol::kLShipdate, MakeDate(1995, 9, 1),
             MakeDate(1995, 10, 1)),
      Proj(MakeVec(C(l, LineitemCol::kLPartkey), Revenue(l)),
           {"l_partkey", "revenue"}));
  // No LIP here: the same select output also feeds the total-revenue
  // aggregate, which must see unpruned rows.
  // Two consumers of the same select output: promo-restricted revenue and
  // total revenue.
  auto promo = b.Probe("probe(part)", sel_li, ht_part, {0}, {1});
  auto promo_sum = b.Aggregate(
      "agg(promo)", promo, {},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "promo_revenue")));
  b.Aggregate("agg(total)", sel_li, {},
              MakeVec(Agg(AggFn::kSum, Col(1, Type::Double()),
                          "total_revenue")));
  return b.Finish(promo_sum);
}

std::unique_ptr<QueryPlan> BuildQ15(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& l = db.lineitem().schema();

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      DateIn(l, LineitemCol::kLShipdate, MakeDate(1996, 1, 1),
             MakeDate(1996, 4, 1)),
      Proj(MakeVec(C(l, LineitemCol::kLSuppkey), Revenue(l)),
           {"l_suppkey", "revenue"}));
  auto agg = b.Aggregate(
      "agg(revenue)", sel_li, {0},
      MakeVec(Agg(AggFn::kSum, Col(1, Type::Double()), "total_revenue")));
  auto sorted = b.Sort("sort", agg, {{1, false}}, 1);
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ19(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& p = db.part().schema();
  const Schema& l = db.lineitem().schema();

  // Union of the three part-side clauses; the joined intermediate is then
  // filtered by the full cross-table OR condition.
  auto part_clause = [&](const std::string& brand,
                         std::vector<std::string> containers, int32_t size) {
    std::vector<std::unique_ptr<Predicate>> parts;
    parts.push_back(CharEq(p, PartCol::kPBrand, brand));
    parts.push_back(CharIn(p, PartCol::kPContainer, std::move(containers)));
    parts.push_back(CmpCL(p, PartCol::kPSize, CompareOp::kGe,
                          TypedValue::Int32(1)));
    parts.push_back(CmpCL(p, PartCol::kPSize, CompareOp::kLe,
                          TypedValue::Int32(size)));
    return And(std::move(parts));
  };
  std::vector<std::unique_ptr<Predicate>> union_parts;
  union_parts.push_back(
      part_clause("Brand#12", {"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 5));
  union_parts.push_back(part_clause(
      "Brand#23", {"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10));
  union_parts.push_back(
      part_clause("Brand#34", {"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 15));
  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()), Or(std::move(union_parts)),
      Proj(MakeVec(C(p, PartCol::kPPartkey), C(p, PartCol::kPBrand),
                   C(p, PartCol::kPContainer), C(p, PartCol::kPSize)),
           {"p_partkey", "p_brand", "p_container", "p_size"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {1, 2, 3});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      LineitemSelectionPredicate(19),
      Proj(MakeVec(C(l, LineitemCol::kLPartkey),
                   C(l, LineitemCol::kLQuantity), Revenue(l)),
           {"l_partkey", "l_quantity", "revenue"}),
      {{ht_part, LineitemCol::kLPartkey}});
  // -> [l_quantity, revenue, p_brand, p_container, p_size]
  auto joined = b.Probe("probe(part)", sel_li, ht_part, {0}, {1, 2});

  const Schema& j = b.SchemaOf(joined);
  auto joined_clause = [&](const std::string& brand, double qty_lo,
                           double qty_hi) {
    std::vector<std::unique_ptr<Predicate>> parts;
    parts.push_back(CharEq(j, 2, brand));
    parts.push_back(
        CmpCL(j, 0, CompareOp::kGe, TypedValue::Double(qty_lo)));
    parts.push_back(
        CmpCL(j, 0, CompareOp::kLe, TypedValue::Double(qty_hi)));
    return And(std::move(parts));
  };
  std::vector<std::unique_ptr<Predicate>> or_parts;
  or_parts.push_back(joined_clause("Brand#12", 1, 11));
  or_parts.push_back(joined_clause("Brand#23", 10, 20));
  or_parts.push_back(joined_clause("Brand#34", 20, 30));
  auto filtered =
      b.Select("filter(joined)", joined, Or(std::move(or_parts)),
               Proj(MakeVec(C(j, 1)), {"revenue"}));
  auto agg = b.Aggregate(
      "agg", filtered, {},
      MakeVec(Agg(AggFn::kSum, Col(0, Type::Double()), "revenue")));
  return b.Finish(agg);
}

std::unique_ptr<QueryPlan> BuildQ21(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& s = db.supplier().schema();
  const Schema& o = db.orders().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      CmpCL(s, SupplierCol::kSNationkey, CompareOp::kEq,
            TypedValue::Int32(tpch::kNationSaudiArabia)),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey)), {"s_suppkey"}));
  auto* ht_sup = b.Build("build(supplier)", sel_sup, {0}, {});

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      OrdersSelectionPredicate(21),
      Proj(MakeVec(C(o, OrdersCol::kOOrderkey)), {"o_orderkey"}));
  auto* ht_ord = b.Build("build(orders)", sel_ord, {0}, {});

  // l2: any lineitem of the same order from a different supplier.
  auto* ht_l2 = b.Build("build(lineitem-all)",
                        PlanBuilder::Base(db.lineitem()),
                        {LineitemCol::kLOrderkey}, {LineitemCol::kLSuppkey});

  // Late lineitems feed both the l3 hash table and the probe chain.
  auto late = b.Select(
      "sel(lineitem-late)", PlanBuilder::Base(db.lineitem()),
      Cmp(CompareOp::kGt, C(l, LineitemCol::kLReceiptdate),
          C(l, LineitemCol::kLCommitdate)),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey),
                   C(l, LineitemCol::kLSuppkey)),
           {"l_orderkey", "l_suppkey"}));
  auto* ht_l3 = b.Build("build(lineitem-late)", late, {0}, {1});

  auto p1 = b.Probe("probe(supplier) semi", late, ht_sup, {1}, {0, 1},
                    JoinKind::kLeftSemi);
  auto p2 = b.Probe("probe(orders) semi", p1, ht_ord, {0}, {0, 1},
                    JoinKind::kLeftSemi);
  auto p3 = b.Probe("probe(lineitem-all) semi", p2, ht_l2, {0}, {0, 1},
                    JoinKind::kLeftSemi,
                    {ResidualCondition{1, 0, CompareOp::kNe}});
  auto p4 = b.Probe("probe(lineitem-late) anti", p3, ht_l3, {0}, {1},
                    JoinKind::kLeftAnti,
                    {ResidualCondition{1, 0, CompareOp::kNe}});
  auto agg = b.Aggregate(
      "agg", p4, {0}, MakeVec(Agg(AggFn::kCount, nullptr, "numwait")));
  auto sorted = b.Sort("sort", agg, {{1, false}, {0, true}}, 100);
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ22(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& c = db.customer().schema();

  auto* ht_ord = b.Build("build(orders)", PlanBuilder::Base(db.orders()),
                         {OrdersCol::kOCustkey}, {});

  // Country codes 13, 31, 23, 29, 30, 18, 17 (phone prefix = nationkey+10).
  std::vector<std::unique_ptr<Predicate>> prefixes;
  for (const char* code : {"13", "31", "23", "29", "30", "18", "17"}) {
    prefixes.push_back(std::make_unique<Like>(
        C(c, CustomerCol::kCPhone), std::string(code) + "%",
        /*negated=*/false));
  }
  std::vector<std::unique_ptr<Predicate>> sel_parts;
  sel_parts.push_back(Or(std::move(prefixes)));
  sel_parts.push_back(CmpCL(c, CustomerCol::kCAcctbal, CompareOp::kGt,
                            TypedValue::Double(0.0)));
  auto sel_cust = b.Select(
      "sel(customer)", PlanBuilder::Base(db.customer()),
      And(std::move(sel_parts)),
      Proj(MakeVec(C(c, CustomerCol::kCCustkey),
                   std::make_unique<Substring>(C(c, CustomerCol::kCPhone), 0,
                                               2),
                   C(c, CustomerCol::kCAcctbal)),
           {"c_custkey", "cntrycode", "c_acctbal"}));
  auto anti = b.Probe("probe(orders) anti", sel_cust, ht_ord, {0}, {1, 2},
                      JoinKind::kLeftAnti);
  auto agg = b.Aggregate(
      "agg", anti, {0},
      MakeVec(Agg(AggFn::kCount, nullptr, "numcust"),
              Agg(AggFn::kSum, Col(1, Type::Double()), "totacctbal")));
  auto sorted = b.Sort("sort", agg, {{0, true}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ2(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& p = db.part().schema();
  const Schema& n = db.nation().schema();
  const Schema& s = db.supplier().schema();
  const Schema& ps = db.partsupp().schema();

  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()),
      And(MakePreds(CmpCL(p, PartCol::kPSize, CompareOp::kEq,
                          TypedValue::Int32(15)),
                    std::make_unique<Like>(C(p, PartCol::kPType), "%BRASS",
                                           false))),
      Proj(MakeVec(C(p, PartCol::kPPartkey)), {"p_partkey"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {});

  auto sel_nat = b.Select(
      "sel(nation)", PlanBuilder::Base(db.nation()),
      CmpCL(n, NationCol::kNRegionkey, CompareOp::kEq,
            TypedValue::Int32(tpch::kRegionEurope)),
      Proj(MakeVec(C(n, NationCol::kNNationkey)), {"n_nationkey"}));
  auto* ht_nat = b.Build("build(nation)", sel_nat, {0}, {});

  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey),
                   C(s, SupplierCol::kSNationkey)),
           {"s_suppkey", "s_nationkey"}));
  auto eu_sup = b.Probe("probe(nation) semi", sel_sup, ht_nat, {1}, {0},
                        JoinKind::kLeftSemi);
  auto* ht_sup = b.Build("build(supplier)", eu_sup, {0}, {});

  // Eligible partsupp rows: European suppliers of BRASS parts.
  auto sel_ps = b.Select(
      "sel(partsupp)", PlanBuilder::Base(db.partsupp()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(ps, tpch::kPsPartkey), C(ps, tpch::kPsSuppkey),
                   C(ps, tpch::kPsSupplycost)),
           {"ps_partkey", "ps_suppkey", "ps_supplycost"}));
  auto eu_ps = b.Probe("probe(supplier) semi", sel_ps, ht_sup, {1},
                       {0, 1, 2}, JoinKind::kLeftSemi);
  auto eligible = b.Probe("probe(part) semi", eu_ps, ht_part, {0},
                          {0, 1, 2}, JoinKind::kLeftSemi);

  // Min supply cost per part (the correlated subquery), joined back on
  // cost equality.
  auto min_cost = b.Aggregate(
      "agg(min-cost)", eligible, {0},
      MakeVec(Agg(AggFn::kMin, Col(2, Type::Double()), "min_cost")));
  auto* ht_min = b.Build("build(min-cost)", min_cost, {0}, {1});
  auto winners =
      b.Probe("probe(min-cost)", eligible, ht_min, {0}, {0, 1, 2},
              JoinKind::kLeftSemi,
              {ResidualCondition{2, 0, CompareOp::kEq}});
  auto sorted = b.Sort("sort", winners, {{2, true}, {0, true}, {1, true}},
                       100);
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ9(const TpchDatabase& db,
                                   const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& p = db.part().schema();
  const Schema& o = db.orders().schema();
  const Schema& l = db.lineitem().schema();
  const Schema& ps = db.partsupp().schema();

  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()),
      std::make_unique<Like>(C(p, PartCol::kPName), "%green%", false),
      Proj(MakeVec(C(p, PartCol::kPPartkey)), {"p_partkey"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {});

  auto* ht_sup = b.Build("build(supplier)", PlanBuilder::Base(db.supplier()),
                         {SupplierCol::kSSuppkey},
                         {SupplierCol::kSNationkey});

  auto* ht_ps = b.Build("build(partsupp)", PlanBuilder::Base(db.partsupp()),
                        {tpch::kPsPartkey, tpch::kPsSuppkey},
                        {tpch::kPsSupplycost});

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(o, OrdersCol::kOOrderkey),
                   std::make_unique<ExtractYear>(
                       C(o, OrdersCol::kOOrderdate))),
           {"o_orderkey", "o_year"}));
  auto* ht_ord = b.Build("build(orders)", sel_ord, {0}, {1});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey),
                   C(l, LineitemCol::kLPartkey),
                   C(l, LineitemCol::kLSuppkey),
                   C(l, LineitemCol::kLQuantity), Revenue(l)),
           {"l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
            "revenue"}),
      {{ht_part, LineitemCol::kLPartkey}});
  (void)ps;
  // -> [l_orderkey, l_partkey, l_suppkey, l_quantity, revenue]
  auto p1 = b.Probe("probe(part) semi", sel_li, ht_part, {1},
                    {0, 1, 2, 3, 4}, JoinKind::kLeftSemi);
  // -> [l_orderkey, l_suppkey, l_quantity, revenue, ps_supplycost]
  auto q1 = b.Probe("probe(partsupp)", p1, ht_ps, {1, 2}, {0, 2, 3, 4});
  // -> [l_orderkey, l_quantity, revenue, ps_supplycost, s_nationkey]
  auto q2 = b.Probe("probe(supplier)", q1, ht_sup, {1}, {0, 2, 3, 4});
  // -> [l_quantity, revenue, ps_supplycost, s_nationkey, o_year]
  auto q3 = b.Probe("probe(orders)", q2, ht_ord, {0}, {1, 2, 3, 4});

  // profit = revenue - ps_supplycost * l_quantity
  const Schema& j = b.SchemaOf(q3);
  auto profit = b.Select(
      "compute(profit)", q3, std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(j, 3), C(j, 4),
                   Sub(C(j, 1), Mul(C(j, 2), C(j, 0)))),
           {"s_nationkey", "o_year", "profit"}));
  auto agg = b.Aggregate(
      "agg", profit, {0, 1},
      MakeVec(Agg(AggFn::kSum, Col(2, Type::Double()), "sum_profit")));
  auto sorted = b.Sort("sort", agg, {{0, true}, {1, false}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ11(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& s = db.supplier().schema();
  const Schema& ps = db.partsupp().schema();

  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      CmpCL(s, SupplierCol::kSNationkey, CompareOp::kEq,
            TypedValue::Int32(tpch::kNationGermany)),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey)), {"s_suppkey"}));
  auto* ht_sup = b.Build("build(supplier)", sel_sup, {0}, {});

  auto sel_ps = b.Select(
      "sel(partsupp)", PlanBuilder::Base(db.partsupp()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(ps, tpch::kPsPartkey), C(ps, tpch::kPsSuppkey),
                   Mul(C(ps, tpch::kPsSupplycost),
                       C(ps, tpch::kPsAvailqty))),
           {"ps_partkey", "ps_suppkey", "value"}));
  auto german = b.Probe("probe(supplier) semi", sel_ps, ht_sup, {1}, {0, 2},
                        JoinKind::kLeftSemi);
  auto agg = b.Aggregate(
      "agg", german, {0},
      MakeVec(Agg(AggFn::kSum, Col(1, Type::Double()), "value")));
  auto sorted = b.Sort("sort", agg, {{1, false}}, 20);
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ12(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& l = db.lineitem().schema();

  auto* ht_ord = b.Build("build(orders)", PlanBuilder::Base(db.orders()),
                         {OrdersCol::kOOrderkey},
                         {OrdersCol::kOOrderpriority});

  std::vector<std::unique_ptr<Predicate>> parts;
  parts.push_back(CharIn(l, LineitemCol::kLShipmode, {"MAIL", "SHIP"}));
  parts.push_back(Cmp(CompareOp::kLt, C(l, LineitemCol::kLCommitdate),
                      C(l, LineitemCol::kLReceiptdate)));
  parts.push_back(Cmp(CompareOp::kLt, C(l, LineitemCol::kLShipdate),
                      C(l, LineitemCol::kLCommitdate)));
  parts.push_back(DateIn(l, LineitemCol::kLReceiptdate,
                         MakeDate(1994, 1, 1), MakeDate(1995, 1, 1)));
  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      And(std::move(parts)),
      Proj(MakeVec(C(l, LineitemCol::kLOrderkey),
                   std::make_unique<Substring>(
                       C(l, LineitemCol::kLShipmode), 0, 8)),
           {"l_orderkey", "l_shipmode"}));
  // -> [l_shipmode, o_orderpriority]
  auto joined = b.Probe("probe(orders)", sel_li, ht_ord, {0}, {1});
  const Schema& j = b.SchemaOf(joined);
  // The spec's CASE pivot: urgent priorities vs the rest, per ship mode.
  auto high = std::make_unique<CaseWhen>(
      CharIn(j, 1, {"1-URGENT", "2-HIGH"}), LitDouble(1.0), LitDouble(0.0));
  auto low = std::make_unique<CaseWhen>(
      CharIn(j, 1, {"1-URGENT", "2-HIGH"}), LitDouble(0.0), LitDouble(1.0));
  auto agg = b.Aggregate(
      "agg", joined, {0},
      MakeVec(Agg(AggFn::kSum, std::move(high), "high_line_count"),
              Agg(AggFn::kSum, std::move(low), "low_line_count")));
  auto sorted = b.Sort("sort", agg, {{0, true}});
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ17(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& p = db.part().schema();
  const Schema& l = db.lineitem().schema();

  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()),
      And(MakePreds(CharEq(p, PartCol::kPBrand, "Brand#23"),
                    CharEq(p, PartCol::kPContainer, "MED BOX"))),
      Proj(MakeVec(C(p, PartCol::kPPartkey)), {"p_partkey"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {});

  // Per-part average quantity (the correlated aggregate).
  auto avg_qty = b.Aggregate(
      "agg(avg-qty)", PlanBuilder::Base(db.lineitem()),
      {LineitemCol::kLPartkey},
      MakeVec(Agg(AggFn::kAvg, C(l, LineitemCol::kLQuantity), "avg_qty")));
  auto* ht_avg = b.Build("build(avg-qty)", avg_qty, {0}, {1});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(l, LineitemCol::kLPartkey),
                   C(l, LineitemCol::kLQuantity),
                   C(l, LineitemCol::kLExtendedprice)),
           {"l_partkey", "l_quantity", "l_extendedprice"}),
      {{ht_part, LineitemCol::kLPartkey}});
  auto of_part = b.Probe("probe(part) semi", sel_li, ht_part, {0},
                         {0, 1, 2}, JoinKind::kLeftSemi);
  // l_quantity < 0.2 * avg(l_quantity) — the scaled residual.
  auto small = b.Probe(
      "probe(avg-qty) semi", of_part, ht_avg, {0}, {2}, JoinKind::kLeftSemi,
      {ResidualCondition{1, 0, CompareOp::kLt, 0.2}});
  const Schema& sm = b.SchemaOf(small);
  auto agg = b.Aggregate(
      "agg", small, {},
      MakeVec(Agg(AggFn::kSum, Div(C(sm, 0), LitDouble(7.0)),
                  "avg_yearly")));
  return b.Finish(agg);
}

std::unique_ptr<QueryPlan> BuildQ18(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& l = db.lineitem().schema();
  const Schema& o = db.orders().schema();

  auto qty = b.Aggregate(
      "agg(order-qty)", PlanBuilder::Base(db.lineitem()),
      {LineitemCol::kLOrderkey},
      MakeVec(Agg(AggFn::kSum, C(l, LineitemCol::kLQuantity), "sum_qty")));
  const Schema& q = b.SchemaOf(qty);
  auto big = b.Select(
      "filter(sum_qty>300)", qty,
      CmpCL(q, 1, CompareOp::kGt, TypedValue::Double(300.0)),
      Proj(MakeVec(C(q, 0), C(q, 1)), {"l_orderkey", "sum_qty"}));
  auto* ht_big = b.Build("build(big-orders)", big, {0}, {1});

  auto sel_ord = b.Select(
      "sel(orders)", PlanBuilder::Base(db.orders()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(o, OrdersCol::kOOrderkey), C(o, OrdersCol::kOCustkey),
                   C(o, OrdersCol::kOTotalprice),
                   C(o, OrdersCol::kOOrderdate)),
           {"o_orderkey", "o_custkey", "o_totalprice", "o_orderdate"}));
  auto joined = b.Probe("probe(big-orders)", sel_ord, ht_big, {0},
                        {0, 1, 2, 3});
  auto sorted = b.Sort("sort", joined, {{2, false}, {3, true}}, 100);
  return b.Finish(sorted);
}

std::unique_ptr<QueryPlan> BuildQ20(const TpchDatabase& db,
                                    const TpchPlanConfig& config) {
  PlanBuilder b(db.storage(), config);
  const Schema& p = db.part().schema();
  const Schema& s = db.supplier().schema();
  const Schema& l = db.lineitem().schema();
  const Schema& ps = db.partsupp().schema();

  auto sel_part = b.Select(
      "sel(part)", PlanBuilder::Base(db.part()),
      std::make_unique<Like>(C(p, PartCol::kPName), "forest%", false),
      Proj(MakeVec(C(p, PartCol::kPPartkey)), {"p_partkey"}));
  auto* ht_part = b.Build("build(part)", sel_part, {0}, {});

  auto sel_li = b.Select(
      "sel(lineitem)", PlanBuilder::Base(db.lineitem()),
      DateIn(l, LineitemCol::kLShipdate, MakeDate(1994, 1, 1),
             MakeDate(1995, 1, 1)),
      Proj(MakeVec(C(l, LineitemCol::kLPartkey),
                   C(l, LineitemCol::kLSuppkey),
                   C(l, LineitemCol::kLQuantity)),
           {"l_partkey", "l_suppkey", "l_quantity"}));
  auto shipped = b.Aggregate(
      "agg(shipped-qty)", sel_li, {0, 1},
      MakeVec(Agg(AggFn::kSum, Col(2, Type::Double()), "sum_qty")));
  auto* ht_shipped = b.Build("build(shipped-qty)", shipped, {0, 1}, {2});

  auto sel_ps = b.Select(
      "sel(partsupp)", PlanBuilder::Base(db.partsupp()),
      std::make_unique<TruePredicate>(),
      Proj(MakeVec(C(ps, tpch::kPsPartkey), C(ps, tpch::kPsSuppkey),
                   C(ps, tpch::kPsAvailqty)),
           {"ps_partkey", "ps_suppkey", "ps_availqty"}));
  auto forest_ps = b.Probe("probe(part) semi", sel_ps, ht_part, {0},
                           {0, 1, 2}, JoinKind::kLeftSemi);
  // ps_availqty > 0.5 * sum(l_quantity) — the scaled residual.
  auto excess = b.Probe(
      "probe(shipped-qty) semi", forest_ps, ht_shipped, {0, 1}, {1},
      JoinKind::kLeftSemi, {ResidualCondition{2, 0, CompareOp::kGt, 0.5}});
  auto* ht_excess = b.Build("build(excess-suppliers)", excess, {0}, {});

  auto sel_sup = b.Select(
      "sel(supplier)", PlanBuilder::Base(db.supplier()),
      CmpCL(s, SupplierCol::kSNationkey, CompareOp::kEq,
            TypedValue::Int32(tpch::kNationCanada)),
      Proj(MakeVec(C(s, SupplierCol::kSSuppkey),
                   C(s, SupplierCol::kSName)),
           {"s_suppkey", "s_name"}));
  auto result = b.Probe("probe(excess-suppliers) semi", sel_sup, ht_excess,
                        {0}, {0, 1}, JoinKind::kLeftSemi);
  auto sorted = b.Sort("sort", result, {{0, true}});
  return b.Finish(sorted);
}

}  // namespace

const std::vector<int>& SupportedTpchQueries() {
  // Everything except Q16 (it needs 3-column grouping plus a DISTINCT
  // aggregate; see DESIGN.md).
  static const std::vector<int>* kQueries = new std::vector<int>{
      1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 17, 18, 19, 20,
      21, 22};
  return *kQueries;
}

bool IsTpchQuerySupported(int query) {
  for (int q : SupportedTpchQueries()) {
    if (q == query) return true;
  }
  return false;
}

std::unique_ptr<QueryPlan> BuildTpchPlan(int query, const TpchDatabase& db,
                                         const TpchPlanConfig& config) {
  switch (query) {
    case 1:
      return BuildQ1(db, config);
    case 2:
      return BuildQ2(db, config);
    case 3:
      return BuildQ3(db, config);
    case 4:
      return BuildQ4(db, config);
    case 5:
      return BuildQ5(db, config);
    case 6:
      return BuildQ6(db, config);
    case 7:
      return BuildQ7(db, config);
    case 8:
      return BuildQ8(db, config);
    case 9:
      return BuildQ9(db, config);
    case 10:
      return BuildQ10(db, config);
    case 11:
      return BuildQ11(db, config);
    case 12:
      return BuildQ12(db, config);
    case 13:
      return BuildQ13(db, config);
    case 14:
      return BuildQ14(db, config);
    case 15:
      return BuildQ15(db, config);
    case 17:
      return BuildQ17(db, config);
    case 18:
      return BuildQ18(db, config);
    case 19:
      return BuildQ19(db, config);
    case 20:
      return BuildQ20(db, config);
    case 21:
      return BuildQ21(db, config);
    case 22:
      return BuildQ22(db, config);
    default:
      UOT_CHECK(false);
      return nullptr;
  }
}

const std::vector<int>& TpchLineitemReductionQueries() {
  static const std::vector<int>* kQueries = new std::vector<int>{3, 7, 10, 19};
  return *kQueries;
}

const std::vector<int>& TpchOrdersReductionQueries() {
  static const std::vector<int>* kQueries =
      new std::vector<int>{3, 4, 5, 8, 10, 21};
  return *kQueries;
}

SelectionSpec TpchSelectionSpec(int query, const std::string& table_name) {
  SelectionSpec spec;
  if (table_name == "lineitem") {
    spec.predicate = LineitemSelectionPredicate(query);
    spec.projected_bytes = LineitemSelectionProjectedBytes(query);
  } else if (table_name == "orders") {
    spec.predicate = OrdersSelectionPredicate(query);
    spec.projected_bytes = OrdersSelectionProjectedBytes(query);
  } else {
    UOT_CHECK(false);
  }
  return spec;
}

}  // namespace uot
