#ifndef UOT_TPCH_TPCH_SCHEMA_H_
#define UOT_TPCH_TPCH_SCHEMA_H_

#include <string>

#include "types/schema.h"

namespace uot {

/// TPC-H table schemas (fixed-width adaptation; see DESIGN.md: DECIMAL ->
/// DOUBLE, VARCHAR -> CHAR(n) sized near the spec's average lengths).
///
/// Column order matches the TPC-H specification, so plan builders can refer
/// to columns via the named index constants below.
Schema LineitemSchema();
Schema OrdersSchema();
Schema CustomerSchema();
Schema PartSchema();
Schema SupplierSchema();
Schema PartsuppSchema();
Schema NationSchema();
Schema RegionSchema();

// Column indices (schema order mirrors the spec).
namespace tpch {

enum LineitemCol : int {
  kLOrderkey = 0,
  kLPartkey,
  kLSuppkey,
  kLLinenumber,
  kLQuantity,
  kLExtendedprice,
  kLDiscount,
  kLTax,
  kLReturnflag,
  kLLinestatus,
  kLShipdate,
  kLCommitdate,
  kLReceiptdate,
  kLShipinstruct,
  kLShipmode,
  kLComment,
};

enum OrdersCol : int {
  kOOrderkey = 0,
  kOCustkey,
  kOOrderstatus,
  kOTotalprice,
  kOOrderdate,
  kOOrderpriority,
  kOClerk,
  kOShippriority,
  kOComment,
};

enum CustomerCol : int {
  kCCustkey = 0,
  kCName,
  kCAddress,
  kCNationkey,
  kCPhone,
  kCAcctbal,
  kCMktsegment,
  kCComment,
};

enum PartCol : int {
  kPPartkey = 0,
  kPName,
  kPMfgr,
  kPBrand,
  kPType,
  kPSize,
  kPContainer,
  kPRetailprice,
  kPComment,
};

enum SupplierCol : int {
  kSSuppkey = 0,
  kSName,
  kSAddress,
  kSNationkey,
  kSPhone,
  kSAcctbal,
  kSComment,
};

enum PartsuppCol : int {
  kPsPartkey = 0,
  kPsSuppkey,
  kPsAvailqty,
  kPsSupplycost,
  kPsComment,
};

enum NationCol : int {
  kNNationkey = 0,
  kNName,
  kNRegionkey,
  kNComment,
};

enum RegionCol : int {
  kRRegionkey = 0,
  kRName,
  kRComment,
};

/// Standard TPC-H nation keys used by the query plans.
inline constexpr int32_t kNationFrance = 6;
inline constexpr int32_t kNationGermany = 7;
inline constexpr int32_t kNationBrazil = 2;
inline constexpr int32_t kNationSaudiArabia = 20;
inline constexpr int32_t kNationCanada = 3;
/// Region keys.
inline constexpr int32_t kRegionAmerica = 1;
inline constexpr int32_t kRegionAsia = 2;
inline constexpr int32_t kRegionEurope = 3;

}  // namespace tpch

}  // namespace uot

#endif  // UOT_TPCH_TPCH_SCHEMA_H_
