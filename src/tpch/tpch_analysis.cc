#include "tpch/tpch_analysis.h"

#include <cstdio>

#include "model/memory_model.h"

namespace uot {

ReductionRow AnalyzeReduction(const TpchDatabase& db, int query,
                              const std::string& table_name) {
  const Table* table = db.table(table_name);
  UOT_CHECK(table != nullptr);
  SelectionSpec spec = TpchSelectionSpec(query, table_name);

  ReductionRow row;
  row.query = query;
  for (const Block* block : table->blocks()) {
    row.input_rows += block->num_rows();
    row.selected_rows += spec.predicate->FilterAll(*block).size();
  }
  row.selectivity = MemoryModel::Selectivity(row.selected_rows,
                                             row.input_rows);
  row.projectivity = MemoryModel::Projectivity(
      spec.projected_bytes, table->schema().row_width());
  row.total = MemoryModel::TotalReduction(row.selectivity, row.projectivity);
  return row;
}

std::vector<ReductionRow> AnalyzeLineitemReductions(const TpchDatabase& db) {
  std::vector<ReductionRow> rows;
  for (int q : TpchLineitemReductionQueries()) {
    rows.push_back(AnalyzeReduction(db, q, "lineitem"));
  }
  return rows;
}

std::vector<ReductionRow> AnalyzeOrdersReductions(const TpchDatabase& db) {
  std::vector<ReductionRow> rows;
  for (int q : TpchOrdersReductionQueries()) {
    rows.push_back(AnalyzeReduction(db, q, "orders"));
  }
  return rows;
}

std::string RenderReductionTable(const std::vector<ReductionRow>& rows,
                                 const std::string& table_name) {
  std::string out = "Query | Selectivity (%) | Projectivity (%) | Total (%)"
                    "   [input table " + table_name + "]\n";
  char line[160];
  double sel_sum = 0, proj_sum = 0, total_sum = 0;
  for (const ReductionRow& r : rows) {
    std::snprintf(line, sizeof(line), "%02d    | %15.1f | %16.1f | %9.2f\n",
                  r.query, 100.0 * r.selectivity, 100.0 * r.projectivity,
                  100.0 * r.total);
    out += line;
    sel_sum += r.selectivity;
    proj_sum += r.projectivity;
    total_sum += r.total;
  }
  const double n = static_cast<double>(rows.size());
  std::snprintf(line, sizeof(line), "Avg   | %15.1f | %16.1f | %9.2f\n",
                100.0 * sel_sum / n, 100.0 * proj_sum / n,
                100.0 * total_sum / n);
  out += line;
  return out;
}

}  // namespace uot
