#include "tpch/tpch_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "types/date.h"
#include "types/row_builder.h"

namespace uot {
namespace {

using tpch::CustomerCol;
using tpch::LineitemCol;
using tpch::NationCol;
using tpch::OrdersCol;
using tpch::PartCol;
using tpch::PartsuppCol;
using tpch::RegionCol;
using tpch::SupplierCol;

struct NationDef {
  const char* name;
  int region;
};

// The 25 spec nations with their region keys (region order below).
constexpr NationDef kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1}, {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},     {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},   {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},      {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},    {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},   {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},    {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1},
};

constexpr const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "MACHINERY", "HOUSEHOLD"};

constexpr const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                        "4-NOT SPECI", "5-LOW"};

constexpr const char* kInstructs[4] = {"DELIVER IN PERSON", "COLLECT COD",
                                       "NONE", "TAKE BACK RETURN"};

constexpr const char* kModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                   "TRUCK",   "MAIL", "FOB"};

constexpr const char* kTypeSyl1[6] = {"STANDARD", "SMALL",   "MEDIUM",
                                      "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypeSyl2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                      "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyl3[5] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                      "COPPER"};

constexpr const char* kContainerSyl1[5] = {"SM", "LG", "MED", "JUMBO",
                                           "WRAP"};
constexpr const char* kContainerSyl2[8] = {"CASE", "BOX", "BAG", "JAR",
                                           "PKG",  "PACK", "CAN", "DRUM"};

constexpr const char* kWords[16] = {
    "carefully", "quickly",  "furiously", "slyly",   "blithely", "ideas",
    "deposits",  "packages", "accounts",  "theodolites", "pinto",
    "foxes",     "pending",  "ironic",    "express", "regular"};

// Part-name vocabulary (spec 4.2.3: P_NAME is made of color words); the
// Q9 '%green%' and Q20 'forest%' predicates select against these.
constexpr const char* kColors[20] = {
    "almond",  "antique", "aquamarine", "azure",   "beige",
    "bisque",  "black",   "blanched",   "blue",    "blush",
    "brown",   "burlywood", "chartreuse", "chocolate", "coral",
    "cornsilk", "cream",  "forest",     "green",   "honeydew"};

const int32_t kStartDate = MakeDate(1992, 1, 1);
const int32_t kEndDate = MakeDate(1998, 8, 2);

std::string RandomComment(Random* rng, int max_words) {
  std::string out;
  const int words = static_cast<int>(rng->Uniform(2, max_words));
  for (int i = 0; i < words; ++i) {
    if (i > 0) out += ' ';
    out += kWords[rng->Uniform(0, 15)];
  }
  return out;
}

double PartRetailPrice(int32_t partkey) {
  return 900.0 + static_cast<double>(partkey % 1000) / 10.0 +
         static_cast<double>(partkey % 10);
}

}  // namespace

int32_t TpchDatabase::CurrentDate() { return MakeDate(1995, 6, 17); }

const Table* TpchDatabase::table(const std::string& name) const {
  if (name == "lineitem") return lineitem_.get();
  if (name == "orders") return orders_.get();
  if (name == "customer") return customer_.get();
  if (name == "part") return part_.get();
  if (name == "supplier") return supplier_.get();
  if (name == "partsupp") return partsupp_.get();
  if (name == "nation") return nation_.get();
  if (name == "region") return region_.get();
  return nullptr;
}

void TpchDatabase::Generate(const TpchConfig& config) {
  config_ = config;
  const double sf = config.scale_factor;
  UOT_CHECK(sf > 0);
  Random rng(config.seed);

  const int64_t num_supplier =
      std::max<int64_t>(10, static_cast<int64_t>(10000 * sf));
  const int64_t num_customer =
      std::max<int64_t>(150, static_cast<int64_t>(150000 * sf));
  const int64_t num_part =
      std::max<int64_t>(200, static_cast<int64_t>(200000 * sf));
  const int64_t num_orders =
      std::max<int64_t>(1500, static_cast<int64_t>(1500000 * sf));

  auto make_table = [&](const char* name, Schema schema) {
    return std::make_unique<Table>(name, std::move(schema), config.layout,
                                   config.block_bytes, storage_,
                                   MemoryCategory::kBaseTable);
  };

  // ---- region ----
  region_ = make_table("region", RegionSchema());
  {
    RowBuilder row(&region_->schema());
    for (int r = 0; r < 5; ++r) {
      row.SetInt32(RegionCol::kRRegionkey, r);
      row.SetChar(RegionCol::kRName, kRegions[r]);
      row.SetChar(RegionCol::kRComment, RandomComment(&rng, 8));
      region_->AppendRow(row.data());
    }
  }

  // ---- nation ----
  nation_ = make_table("nation", NationSchema());
  {
    RowBuilder row(&nation_->schema());
    for (int n = 0; n < 25; ++n) {
      row.SetInt32(NationCol::kNNationkey, n);
      row.SetChar(NationCol::kNName, kNations[n].name);
      row.SetInt32(NationCol::kNRegionkey, kNations[n].region);
      row.SetChar(NationCol::kNComment, RandomComment(&rng, 8));
      nation_->AppendRow(row.data());
    }
  }

  // ---- supplier ----
  supplier_ = make_table("supplier", SupplierSchema());
  {
    RowBuilder row(&supplier_->schema());
    char buf[32];
    for (int64_t s = 1; s <= num_supplier; ++s) {
      const int32_t nation = static_cast<int32_t>(rng.Uniform(0, 24));
      row.SetInt32(SupplierCol::kSSuppkey, static_cast<int32_t>(s));
      std::snprintf(buf, sizeof(buf), "Supplier#%09lld",
                    static_cast<long long>(s));
      row.SetChar(SupplierCol::kSName, buf);
      row.SetChar(SupplierCol::kSAddress, rng.AlphaString(15));
      row.SetInt32(SupplierCol::kSNationkey, nation);
      std::snprintf(buf, sizeof(buf), "%d-%03d-%03d-%04d", 10 + nation,
                    static_cast<int>(rng.Uniform(100, 999)),
                    static_cast<int>(rng.Uniform(100, 999)),
                    static_cast<int>(rng.Uniform(1000, 9999)));
      row.SetChar(SupplierCol::kSPhone, buf);
      row.SetDouble(SupplierCol::kSAcctbal,
                    static_cast<double>(rng.Uniform(-99999, 999999)) / 100.0);
      row.SetChar(SupplierCol::kSComment, RandomComment(&rng, 6));
      supplier_->AppendRow(row.data());
    }
  }

  // ---- customer ----
  customer_ = make_table("customer", CustomerSchema());
  {
    RowBuilder row(&customer_->schema());
    char buf[32];
    for (int64_t c = 1; c <= num_customer; ++c) {
      const int32_t nation = static_cast<int32_t>(rng.Uniform(0, 24));
      row.SetInt32(CustomerCol::kCCustkey, static_cast<int32_t>(c));
      std::snprintf(buf, sizeof(buf), "Customer#%09lld",
                    static_cast<long long>(c));
      row.SetChar(CustomerCol::kCName, buf);
      row.SetChar(CustomerCol::kCAddress, rng.AlphaString(15));
      row.SetInt32(CustomerCol::kCNationkey, nation);
      // Phone country code is 10 + nationkey (spec 4.2.2.9), so Q22's
      // country-code predicates map to nation keys.
      std::snprintf(buf, sizeof(buf), "%d-%03d-%03d-%04d", 10 + nation,
                    static_cast<int>(rng.Uniform(100, 999)),
                    static_cast<int>(rng.Uniform(100, 999)),
                    static_cast<int>(rng.Uniform(1000, 9999)));
      row.SetChar(CustomerCol::kCPhone, buf);
      row.SetDouble(CustomerCol::kCAcctbal,
                    static_cast<double>(rng.Uniform(-99999, 999999)) / 100.0);
      row.SetChar(CustomerCol::kCMktsegment,
                  kSegments[rng.Uniform(0, 4)]);
      row.SetChar(CustomerCol::kCComment, RandomComment(&rng, 5));
      customer_->AppendRow(row.data());
    }
  }

  // ---- part ----
  part_ = make_table("part", PartSchema());
  {
    RowBuilder row(&part_->schema());
    char buf[64];
    for (int64_t p = 1; p <= num_part; ++p) {
      row.SetInt32(PartCol::kPPartkey, static_cast<int32_t>(p));
      std::snprintf(buf, sizeof(buf), "%s %s %s",
                    kColors[rng.Uniform(0, 19)], kColors[rng.Uniform(0, 19)],
                    kColors[rng.Uniform(0, 19)]);
      row.SetChar(PartCol::kPName, buf);
      std::snprintf(buf, sizeof(buf), "Manufacturer#%d",
                    static_cast<int>(rng.Uniform(1, 5)));
      row.SetChar(PartCol::kPMfgr, buf);
      std::snprintf(buf, sizeof(buf), "Brand#%d%d",
                    static_cast<int>(rng.Uniform(1, 5)),
                    static_cast<int>(rng.Uniform(1, 5)));
      row.SetChar(PartCol::kPBrand, buf);
      std::snprintf(buf, sizeof(buf), "%s %s %s",
                    kTypeSyl1[rng.Uniform(0, 5)], kTypeSyl2[rng.Uniform(0, 4)],
                    kTypeSyl3[rng.Uniform(0, 4)]);
      row.SetChar(PartCol::kPType, buf);
      row.SetInt32(PartCol::kPSize, static_cast<int32_t>(rng.Uniform(1, 50)));
      std::snprintf(buf, sizeof(buf), "%s %s",
                    kContainerSyl1[rng.Uniform(0, 4)],
                    kContainerSyl2[rng.Uniform(0, 7)]);
      row.SetChar(PartCol::kPContainer, buf);
      row.SetDouble(PartCol::kPRetailprice,
                    PartRetailPrice(static_cast<int32_t>(p)));
      row.SetChar(PartCol::kPComment, RandomComment(&rng, 4));
      part_->AppendRow(row.data());
    }
  }

  // ---- partsupp ----
  partsupp_ = make_table("partsupp", PartsuppSchema());
  {
    RowBuilder row(&partsupp_->schema());
    for (int64_t p = 1; p <= num_part; ++p) {
      for (int i = 0; i < 4; ++i) {
        // The spec's supplier spread: deterministic, covers all suppliers.
        const int64_t supp =
            (p + i * ((num_supplier / 4) + ((p - 1) / num_supplier))) %
                num_supplier +
            1;
        row.SetInt32(PartsuppCol::kPsPartkey, static_cast<int32_t>(p));
        row.SetInt32(PartsuppCol::kPsSuppkey, static_cast<int32_t>(supp));
        row.SetInt32(PartsuppCol::kPsAvailqty,
                     static_cast<int32_t>(rng.Uniform(1, 9999)));
        row.SetDouble(PartsuppCol::kPsSupplycost,
                      static_cast<double>(rng.Uniform(100, 100000)) / 100.0);
        row.SetChar(PartsuppCol::kPsComment, RandomComment(&rng, 5));
        partsupp_->AppendRow(row.data());
      }
    }
  }

  // ---- orders + lineitem (generated together) ----
  orders_ = make_table("orders", OrdersSchema());
  lineitem_ = make_table("lineitem", LineitemSchema());
  {
    RowBuilder orow(&orders_->schema());
    RowBuilder lrow(&lineitem_->schema());
    char buf[32];
    const int32_t current = CurrentDate();
    for (int64_t o = 1; o <= num_orders; ++o) {
      const int64_t orderkey = o * 4 - 3;  // sparse keys as in the spec
      // Spec 4.2.3: O_CUSTKEY is never a multiple of 3, so a third of the
      // customers have no orders (Q13's zero-order bucket, Q22's target).
      int32_t custkey = static_cast<int32_t>(rng.Uniform(1, num_customer));
      if (custkey % 3 == 0) {
        custkey = custkey == num_customer ? 1 : custkey + 1;
      }
      const int32_t orderdate = static_cast<int32_t>(
          rng.Uniform(kStartDate, kEndDate - 121));
      const int lines = static_cast<int>(rng.Uniform(1, 7));
      double total = 0.0;
      int shipped_lines = 0;
      for (int l = 1; l <= lines; ++l) {
        const int32_t partkey =
            static_cast<int32_t>(rng.Uniform(1, num_part));
        const int64_t supp =
            (partkey + (l % 4) * ((num_supplier / 4) +
                                  ((partkey - 1) / num_supplier))) %
                num_supplier +
            1;
        const double quantity = static_cast<double>(rng.Uniform(1, 50));
        const double extprice = quantity * PartRetailPrice(partkey);
        const double discount =
            static_cast<double>(rng.Uniform(0, 10)) / 100.0;
        const double tax = static_cast<double>(rng.Uniform(0, 8)) / 100.0;
        const int32_t shipdate =
            orderdate + static_cast<int32_t>(rng.Uniform(1, 121));
        const int32_t commitdate =
            orderdate + static_cast<int32_t>(rng.Uniform(30, 90));
        const int32_t receiptdate =
            shipdate + static_cast<int32_t>(rng.Uniform(1, 30));
        const bool shipped = shipdate <= current;
        if (shipped) ++shipped_lines;

        lrow.SetInt64(LineitemCol::kLOrderkey, orderkey);
        lrow.SetInt32(LineitemCol::kLPartkey, partkey);
        lrow.SetInt32(LineitemCol::kLSuppkey, static_cast<int32_t>(supp));
        lrow.SetInt32(LineitemCol::kLLinenumber, l);
        lrow.SetDouble(LineitemCol::kLQuantity, quantity);
        lrow.SetDouble(LineitemCol::kLExtendedprice, extprice);
        lrow.SetDouble(LineitemCol::kLDiscount, discount);
        lrow.SetDouble(LineitemCol::kLTax, tax);
        lrow.SetChar(LineitemCol::kLReturnflag,
                     receiptdate <= current ? (rng.Bernoulli(0.5) ? "R" : "A")
                                            : "N");
        lrow.SetChar(LineitemCol::kLLinestatus, shipped ? "F" : "O");
        lrow.SetDate(LineitemCol::kLShipdate, shipdate);
        lrow.SetDate(LineitemCol::kLCommitdate, commitdate);
        lrow.SetDate(LineitemCol::kLReceiptdate, receiptdate);
        lrow.SetChar(LineitemCol::kLShipinstruct,
                     kInstructs[rng.Uniform(0, 3)]);
        lrow.SetChar(LineitemCol::kLShipmode, kModes[rng.Uniform(0, 6)]);
        lrow.SetChar(LineitemCol::kLComment, RandomComment(&rng, 4));
        lineitem_->AppendRow(lrow.data());

        total += extprice * (1.0 + tax) * (1.0 - discount);
      }

      orow.SetInt64(OrdersCol::kOOrderkey, orderkey);
      orow.SetInt32(OrdersCol::kOCustkey, custkey);
      orow.SetChar(OrdersCol::kOOrderstatus,
                   shipped_lines == lines ? "F"
                                          : (shipped_lines == 0 ? "O" : "P"));
      orow.SetDouble(OrdersCol::kOTotalprice, total);
      orow.SetDate(OrdersCol::kOOrderdate, orderdate);
      orow.SetChar(OrdersCol::kOOrderpriority,
                   kPriorities[rng.Uniform(0, 4)]);
      std::snprintf(buf, sizeof(buf), "Clerk#%09d",
                    static_cast<int>(rng.Uniform(1, 1000)));
      orow.SetChar(OrdersCol::kOClerk, buf);
      orow.SetInt32(OrdersCol::kOShippriority, 0);
      // ~2% of order comments contain the Q13 '%special%requests%' pattern.
      std::string comment = RandomComment(&rng, 4);
      if (rng.Bernoulli(0.02)) {
        comment = "special " + comment + " requests";
      }
      orow.SetChar(OrdersCol::kOComment, comment);
      orders_->AppendRow(orow.data());
    }
  }
}

}  // namespace uot
