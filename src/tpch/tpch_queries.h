#ifndef UOT_TPCH_TPCH_QUERIES_H_
#define UOT_TPCH_TPCH_QUERIES_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "plan/plan_builder.h"
#include "plan/query_plan.h"
#include "tpch/tpch_generator.h"

namespace uot {

/// Plan-construction knobs shared by all TPC-H plans (see
/// plan/plan_builder.h for the fields, including `use_lip`).
using TpchPlanConfig = PlanBuilderConfig;

/// The queries this reproduction implements: every query the paper names in
/// Fig. 3 callouts and Tables III/IV (see DESIGN.md for the simplifications
/// applied to each).
const std::vector<int>& SupportedTpchQueries();

/// True if `query` is in SupportedTpchQueries().
bool IsTpchQuerySupported(int query);

/// Builds the physical plan for TPC-H query `query` (left-deep hash joins
/// with selections pushed down, the shape Quickstep's optimizer produces).
/// CHECK-fails on unsupported query numbers.
std::unique_ptr<QueryPlan> BuildTpchPlan(int query, const TpchDatabase& db,
                                         const TpchPlanConfig& config);

/// The selection each query applies to `table_name` ("lineitem"/"orders"),
/// as used by the Section VI memory analysis (Tables III and IV).
struct SelectionSpec {
  std::unique_ptr<Predicate> predicate;
  /// Bytes per tuple the selection's projection keeps (expression folding
  /// counted as one 8-byte column, per Section VI-C).
  double projected_bytes = 0;
};

/// Queries with a selection + probe pipeline on lineitem (Table III).
const std::vector<int>& TpchLineitemReductionQueries();
/// Queries with a selection + probe pipeline on orders (Table IV).
const std::vector<int>& TpchOrdersReductionQueries();

/// CHECK-fails if the (query, table) pair is not part of the analysis.
SelectionSpec TpchSelectionSpec(int query, const std::string& table_name);

}  // namespace uot

#endif  // UOT_TPCH_TPCH_QUERIES_H_
