#include "simcache/cache_simulator.h"

#include <cstdio>
#include <cstdlib>

namespace uot {

CacheSimulator::CacheSimulator(CacheSimConfig config) : config_(config) {
  MakeLevel(&l1_, config_.l1);
  MakeLevel(&l2_, config_.l2);
  MakeLevel(&l3_, config_.l3);
  streams_.resize(static_cast<size_t>(config_.tracker_entries));
}

CacheSimulator::StreamState* CacheSimulator::TrackerFor(uint64_t addr,
                                                        bool* fresh) {
  const uint64_t region = addr >> config_.region_shift;
  for (StreamState& s : streams_) {
    if (s.valid && s.region == region) {
      s.lru = ++clock_;
      *fresh = false;
      return &s;
    }
  }
  StreamState* victim = nullptr;
  for (StreamState& s : streams_) {
    if (!s.valid) {
      victim = &s;
      break;
    }
    if (victim == nullptr || s.lru < victim->lru) victim = &s;
  }
  // Allocate: a random-access pattern lands here constantly, evicting the
  // trackers that sequential streams depend on.
  victim->valid = true;
  victim->region = region;
  victim->last_addr = addr;
  victim->last_stride = 0;
  victim->confidence = 0;
  victim->lru = ++clock_;
  *fresh = true;
  return victim;
}

void CacheSimulator::MakeLevel(Level* level, const CacheLevelConfig& config) {
  const uint64_t lines = config.size_bytes / config_.line_bytes;
  level->ways = config.associativity;
  level->num_sets = lines / static_cast<uint64_t>(config.associativity);
  UOT_CHECK(level->num_sets > 0);
  level->latency_ns = config.hit_latency_ns;
  const size_t entries =
      level->num_sets * static_cast<uint64_t>(level->ways);
  level->tags.assign(entries, 0);
  level->lru.assign(entries, 0);
  level->was_prefetch.assign(entries, 0);
}

bool CacheSimulator::Lookup(Level* level, uint64_t line, bool* was_prefetch,
                            bool demand) {
  const uint64_t set = line % level->num_sets;
  const size_t base = set * static_cast<uint64_t>(level->ways);
  // Tag 0 means invalid; shift lines by +1 so line 0 is representable.
  const uint64_t tag = line + 1;
  for (int w = 0; w < level->ways; ++w) {
    const size_t i = base + static_cast<size_t>(w);
    if (level->tags[i] == tag) {
      level->lru[i] = ++clock_;
      if (was_prefetch != nullptr) {
        *was_prefetch = level->was_prefetch[i];
      }
      if (demand) level->was_prefetch[i] = 0;
      return true;
    }
  }
  return false;
}

void CacheSimulator::Insert(Level* level, uint64_t line, bool is_prefetch) {
  const uint64_t set = line % level->num_sets;
  const size_t base = set * static_cast<uint64_t>(level->ways);
  const uint64_t tag = line + 1;
  size_t victim = base;
  uint64_t oldest = UINT64_MAX;
  for (int w = 0; w < level->ways; ++w) {
    const size_t i = base + static_cast<size_t>(w);
    if (level->tags[i] == 0) {
      victim = i;
      break;
    }
    if (level->lru[i] < oldest) {
      oldest = level->lru[i];
      victim = i;
    }
  }
  level->tags[victim] = tag;
  level->lru[victim] = ++clock_;
  level->was_prefetch[victim] = is_prefetch ? 1 : 0;
}

bool CacheSimulator::PrefetchLine(uint64_t line) {
  // Hardware streamers fill L2/L3 (not L1). Skip if already resident.
  const bool in_l2 = Lookup(&l2_, line, nullptr, /*demand=*/false);
  const bool in_l3 = Lookup(&l3_, line, nullptr, /*demand=*/false);
  if (in_l2 && in_l3) return false;
  if (!in_l2) Insert(&l2_, line, true);
  if (!in_l3) Insert(&l3_, line, true);
  ++stats_.prefetches_issued;
  return !in_l3;  // had to be filled from memory
}

double CacheSimulator::Access(uint64_t addr, int stream_id) {
  UOT_DCHECK(stream_id >= 0 &&
             stream_id < static_cast<int>(streams_.size()));
  const uint64_t line = addr / config_.line_bytes;
  ++stats_.accesses;

  double latency;
  bool was_prefetch = false;
  bool l2_missed = false;
  if (Lookup(&l1_, line, &was_prefetch)) {
    ++stats_.l1_hits;
    latency = l1_.latency_ns;
  } else if (Lookup(&l2_, line, &was_prefetch)) {
    ++stats_.l2_hits;
    latency = l2_.latency_ns;
    Insert(&l1_, line, false);
  } else if (Lookup(&l3_, line, &was_prefetch)) {
    ++stats_.l3_hits;
    latency = l3_.latency_ns;
    Insert(&l2_, line, false);
    Insert(&l1_, line, false);
    l2_missed = true;
  } else {
    ++stats_.memory_accesses;
    latency = config_.memory_latency_ns;
    Insert(&l3_, line, false);
    Insert(&l2_, line, false);
    Insert(&l1_, line, false);
    l2_missed = true;
  }
  if (was_prefetch) ++stats_.prefetch_hits;

  // Adjacent-line prefetcher: every L2 demand miss drags in the buddy
  // line of its 128-byte pair.
  if (config_.prefetch_enabled && config_.adjacent_line_prefetch &&
      l2_missed) {
    if (PrefetchLine(line ^ 1)) latency += config_.prefetch_issue_ns;
  }

  // Stride detection and prefetch issue. The detector tracks memory
  // regions with a small LRU table (like hardware streamers), so the
  // caller-supplied stream id is only a trace annotation.
  (void)stream_id;
  if (config_.prefetch_enabled) {
    bool fresh = false;
    StreamState& s = *TrackerFor(addr, &fresh);
    if (!fresh) {
      const int64_t stride =
          static_cast<int64_t>(addr) - static_cast<int64_t>(s.last_addr);
      if (stride != 0 && stride == s.last_stride &&
          std::llabs(stride) <= config_.max_stride_bytes) {
        ++s.confidence;
      } else {
        s.confidence = 0;
      }
      s.last_stride = stride;
      s.last_addr = addr;
    }
    if (s.confidence >= config_.prefetch_trigger && s.last_stride != 0) {
      for (int d = 1; d <= config_.prefetch_degree; ++d) {
        const int64_t target = static_cast<int64_t>(addr) + s.last_stride * d;
        if (target < 0) break;
        const uint64_t target_line =
            static_cast<uint64_t>(target) / config_.line_bytes;
        if (target_line != line && PrefetchLine(target_line)) {
          latency += config_.prefetch_issue_ns;  // bandwidth consumed
        }
      }
    }
  }

  stats_.total_ns += latency;
  return latency;
}

std::string CacheSimulator::Describe() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "CacheSim{L1=%zuK L2=%zuK L3=%zuM line=%zuB prefetch=%s}",
      config_.l1.size_bytes / 1024, config_.l2.size_bytes / 1024,
      config_.l3.size_bytes / (1024 * 1024), config_.line_bytes,
      config_.prefetch_enabled ? "on" : "off");
  return buf;
}

}  // namespace uot
