#ifndef UOT_SIMCACHE_ACCESS_STREAMS_H_
#define UOT_SIMCACHE_ACCESS_STREAMS_H_

#include <cstdint>

#include "simcache/cache_simulator.h"
#include "util/random.h"

namespace uot {

/// Parameters of one simulated operator task over a row-store block
/// (the Table VI setting: row store, one referenced attribute).
struct TaskTraceConfig {
  /// Block (work-order input) size in bytes.
  uint64_t block_bytes = 128 * 1024;
  /// Fixed row-store tuple width; scanning one attribute strides by this.
  uint32_t tuple_bytes = 100;
  /// Referenced attribute width actually touched per tuple.
  uint32_t attr_bytes = 8;
  /// Join hash table size in bytes (build/probe tasks).
  uint64_t hash_table_bytes = 64UL * 1024 * 1024;
  /// Buckets touched per hash-table operation (chain walk).
  int bucket_probes = 2;
  /// Fraction of scanned tuples that reach the hash table (selectivity of
  /// the work already done below this operator).
  double hash_op_fraction = 1.0;
  /// Base virtual address of the input region (keeps tasks from aliasing).
  uint64_t input_base = 1UL << 32;
  uint64_t hash_table_base = 1UL << 36;
  uint64_t output_base = 1UL << 40;
};

/// Replays the memory access pattern of one *select* work order: a strided
/// scan of one attribute across the block's tuples plus a sequential write
/// of the selected output. Returns modeled time in ns.
double SimulateSelectTask(CacheSimulator* sim, const TaskTraceConfig& config,
                          Random* rng, double output_selectivity);

/// One *build hash table* work order: strided scan of the input attribute
/// plus a random write per tuple into the hash-table region (two data
/// streams with conflicting patterns — the case where the paper found
/// prefetching hurts).
double SimulateBuildTask(CacheSimulator* sim, const TaskTraceConfig& config,
                         Random* rng);

/// One *probe hash table* work order: strided scan of the probe input,
/// random reads into the hash-table region, sequential output writes.
double SimulateProbeTask(CacheSimulator* sim, const TaskTraceConfig& config,
                         Random* rng, double match_fraction);

}  // namespace uot

#endif  // UOT_SIMCACHE_ACCESS_STREAMS_H_
