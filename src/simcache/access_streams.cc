#include "simcache/access_streams.h"

namespace uot {
namespace {

constexpr int kInputStream = 0;
constexpr int kHashStream = 1;
constexpr int kOutputStream = 2;

/// Touches `[addr, addr+bytes)` through stream `stream`, issuing the raw
/// (unaligned) addresses so the stride detector sees the true tuple
/// stride.
double TouchSpan(CacheSimulator* sim, uint64_t addr, uint32_t bytes,
                 int stream) {
  const uint64_t line = sim->config().line_bytes;
  double ns = sim->Access(addr, stream);
  // Touch any additional lines the span crosses.
  const uint64_t first = addr / line;
  const uint64_t last = (addr + bytes - 1) / line;
  for (uint64_t l = first + 1; l <= last; ++l) {
    ns += sim->Access(l * line, stream);
  }
  return ns;
}

}  // namespace

double SimulateSelectTask(CacheSimulator* sim, const TaskTraceConfig& config,
                          Random* rng, double output_selectivity) {
  const uint64_t tuples = config.block_bytes / config.tuple_bytes;
  double ns = 0.0;
  uint64_t out_addr = config.output_base;
  for (uint64_t t = 0; t < tuples; ++t) {
    // Strided single-attribute scan over the row store.
    ns += TouchSpan(sim, config.input_base + t * config.tuple_bytes,
                    config.attr_bytes, kInputStream);
    if (rng->NextDouble() < output_selectivity) {
      ns += TouchSpan(sim, out_addr, config.attr_bytes, kOutputStream);
      out_addr += config.attr_bytes;
    }
  }
  return ns;
}

double SimulateBuildTask(CacheSimulator* sim, const TaskTraceConfig& config,
                         Random* rng) {
  const uint64_t tuples = config.block_bytes / config.tuple_bytes;
  const uint64_t line = sim->config().line_bytes;
  const uint64_t ht_lines = config.hash_table_bytes / line;
  double ns = 0.0;
  for (uint64_t t = 0; t < tuples; ++t) {
    ns += TouchSpan(sim, config.input_base + t * config.tuple_bytes,
                    config.attr_bytes, kInputStream);
    if (rng->NextDouble() < config.hash_op_fraction) {
      // Random bucket writes (chain head + chain walk).
      for (int b = 0; b < config.bucket_probes; ++b) {
        const uint64_t bucket =
            static_cast<uint64_t>(rng->Uniform(0, static_cast<int64_t>(
                                                      ht_lines - 1)));
        ns += sim->Access(config.hash_table_base + bucket * line,
                          kHashStream);
      }
    }
  }
  return ns;
}

double SimulateProbeTask(CacheSimulator* sim, const TaskTraceConfig& config,
                         Random* rng, double match_fraction) {
  const uint64_t tuples = config.block_bytes / config.tuple_bytes;
  const uint64_t line = sim->config().line_bytes;
  const uint64_t ht_lines = config.hash_table_bytes / line;
  double ns = 0.0;
  uint64_t out_addr = config.output_base;
  for (uint64_t t = 0; t < tuples; ++t) {
    ns += TouchSpan(sim, config.input_base + t * config.tuple_bytes,
                    config.attr_bytes, kInputStream);
    if (rng->NextDouble() < config.hash_op_fraction) {
      for (int b = 0; b < config.bucket_probes; ++b) {
        const uint64_t bucket =
            static_cast<uint64_t>(rng->Uniform(0, static_cast<int64_t>(
                                                      ht_lines - 1)));
        ns += sim->Access(config.hash_table_base + bucket * line,
                          kHashStream);
      }
      if (rng->NextDouble() < match_fraction) {
        ns += TouchSpan(sim, out_addr, config.tuple_bytes, kOutputStream);
        out_addr += config.tuple_bytes;
      }
    }
  }
  return ns;
}

}  // namespace uot
