#ifndef UOT_SIMCACHE_CACHE_SIMULATOR_H_
#define UOT_SIMCACHE_CACHE_SIMULATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/macros.h"

namespace uot {

/// One set-associative, LRU cache level.
struct CacheLevelConfig {
  size_t size_bytes;
  int associativity;
  double hit_latency_ns;
};

/// A three-level cache hierarchy with a stride ("spatial") hardware
/// prefetcher that can be enabled or disabled.
///
/// Substitutes for the paper's MSR 0x1A4 experiment (Section IV-D /
/// Table VI): the same access patterns the engine's operators issue are
/// replayed through this simulator with the prefetcher on and off.
/// Defaults mirror the paper's Haswell EP platform (Table V).
struct CacheSimConfig {
  size_t line_bytes = 64;
  CacheLevelConfig l1{32 * 1024, 8, 1.0};
  CacheLevelConfig l2{256 * 1024, 8, 4.0};
  CacheLevelConfig l3{25UL * 1024 * 1024, 16, 12.0};
  double memory_latency_ns = 90.0;

  bool prefetch_enabled = true;
  /// Consecutive same-stride accesses needed before prefetching starts.
  int prefetch_trigger = 2;
  /// Lines fetched ahead once a stream is confirmed.
  int prefetch_degree = 4;
  /// Maximum stride (bytes) the detector tracks.
  int64_t max_stride_bytes = 2048;
  /// Stream trackers available (hardware streamers track a handful of
  /// regions; random access patterns thrash this table, which is what
  /// makes mixed streams defeat the prefetcher — paper Section VII-B6).
  int tracker_entries = 16;
  /// log2 of the tracked region size (16 KB regions).
  int region_shift = 14;
  /// Memory-bandwidth cost charged per prefetch that has to be filled from
  /// DRAM (the line occupies the memory channel that demand misses also
  /// need — useless prefetches are not free).
  double prefetch_issue_ns = 40.0;
  /// Model the L2 adjacent-line prefetcher (MSR 0x1A4 bit 1): every L2
  /// demand miss also fetches the buddy line. Useful for strided scans,
  /// pure overhead for random hash-table traffic — the effect behind the
  /// paper's Table VI probe/build slowdowns.
  bool adjacent_line_prefetch = true;
};

/// Per-level and prefetcher statistics.
struct CacheSimStats {
  uint64_t accesses = 0;
  uint64_t l1_hits = 0;
  uint64_t l2_hits = 0;
  uint64_t l3_hits = 0;
  uint64_t memory_accesses = 0;
  uint64_t prefetches_issued = 0;
  uint64_t prefetch_hits = 0;  // demand hits on prefetched lines
  double total_ns = 0.0;

  double MissRatioL3() const {
    return accesses == 0
               ? 0.0
               : static_cast<double>(memory_accesses) /
                     static_cast<double>(accesses);
  }
};

/// Trace-driven cache simulator. Each access belongs to a small-integer
/// "stream" (e.g. 0 = input scan, 1 = hash table, 2 = output) so the stride
/// prefetcher can track concurrent access streams the way per-page/stream
/// hardware detectors do.
class CacheSimulator {
 public:
  explicit CacheSimulator(CacheSimConfig config = CacheSimConfig());
  UOT_DISALLOW_COPY_AND_ASSIGN(CacheSimulator);

  /// Simulates a demand access (read or write — the timing model treats
  /// them alike) and returns its latency in ns.
  double Access(uint64_t addr, int stream_id);

  const CacheSimStats& stats() const { return stats_; }
  const CacheSimConfig& config() const { return config_; }
  void ResetStats() { stats_ = CacheSimStats{}; }

  std::string Describe() const;

 private:
  struct Level {
    uint64_t num_sets;
    int ways;
    double latency_ns;
    // tags[set * ways + way]; 0 = invalid. lru holds a global counter.
    std::vector<uint64_t> tags;
    std::vector<uint64_t> lru;
    std::vector<uint8_t> was_prefetch;
  };

  struct StreamState {
    uint64_t region = 0;  // addr >> region_shift
    uint64_t last_addr = 0;
    int64_t last_stride = 0;
    int confidence = 0;
    uint64_t lru = 0;
    bool valid = false;
  };

  /// Returns the tracker for the region of `addr`, allocating (LRU
  /// eviction) if absent. Sets *fresh when the tracker was (re)allocated.
  StreamState* TrackerFor(uint64_t addr, bool* fresh);

  /// Looks up `line` in `level`; returns true on hit (updating LRU). Only
  /// demand lookups consume the entry's prefetch marker.
  bool Lookup(Level* level, uint64_t line, bool* was_prefetch,
              bool demand = true);
  /// Inserts `line` into `level`, evicting LRU.
  void Insert(Level* level, uint64_t line, bool is_prefetch);
  void MakeLevel(Level* level, const CacheLevelConfig& config);
  /// Returns true if the prefetch had to be filled from memory.
  bool PrefetchLine(uint64_t line);

  CacheSimConfig config_;
  Level l1_, l2_, l3_;
  std::vector<StreamState> streams_;
  uint64_t clock_ = 0;
  CacheSimStats stats_;
};

}  // namespace uot

#endif  // UOT_SIMCACHE_CACHE_SIMULATOR_H_
