#ifndef UOT_OBS_METRICS_SAMPLER_H_
#define UOT_OBS_METRICS_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/macros.h"
#include "util/status.h"

namespace uot {
namespace obs {

/// One point of the engine time-series: a monotonic timestamp plus the
/// values of every counter and gauge registered at sampling time, in the
/// order MetricsRegistry::SampleValues returns them.
struct MetricsSample {
  int64_t t_ns = 0;
  std::vector<std::pair<std::string, int64_t>> values;
};

/// A background sampler that periodically snapshots a MetricsRegistry
/// into a bounded ring buffer, turning the registry's instantaneous
/// counters/gauges into a time-series an operator can plot. The ring
/// keeps the most recent `capacity` samples; older ones are overwritten
/// (total_samples() keeps counting so wraparound is observable).
///
/// The sampler thread touches only the registry's mutex-protected
/// iteration path — never the lock-free hot-path handles — so enabling it
/// adds no cost to query execution beyond the sampling interval itself.
class MetricsSampler {
 public:
  struct Options {
    /// Interval between samples. Clamped to >= 1 ms.
    int64_t interval_ms = 100;
    /// Ring-buffer capacity in samples (>= 1).
    size_t capacity = 600;
    /// Invoked (on the sampler thread) immediately before each snapshot;
    /// hosts use it to refresh gauges that are cheaper to compute on
    /// demand than to maintain on the hot path (queue depths, headroom).
    std::function<void()> pre_sample;
  };

  MetricsSampler(const MetricsRegistry* registry, Options options);
  ~MetricsSampler();
  UOT_DISALLOW_COPY_AND_ASSIGN(MetricsSampler);

  /// Starts the background thread. No-op when already running.
  void Start();
  /// Stops and joins the background thread, taking one final sample so
  /// short-lived runs always have an end-state point. No-op when not
  /// running.
  void Stop();
  bool running() const;

  /// Takes one sample synchronously on the caller's thread (also used by
  /// the background thread). Public so tests can drive wraparound without
  /// timing dependence.
  void SampleOnce();

  /// Samples recorded since construction, including overwritten ones.
  uint64_t total_samples() const;
  /// The retained samples, oldest first.
  std::vector<MetricsSample> Snapshot() const;

  /// {"interval_ms":..,"total_samples":..,"samples":[{"t_ns":..,
  ///  "values":{name:value,...}},...]} — parseable by JsonValue::Parse.
  std::string ToJson() const;
  /// Long-format CSV: `t_ns,metric,value` rows (header first), one row
  /// per metric per sample, so columns never shift as metrics register.
  std::string ToCsv() const;
  Status WriteJson(const std::string& path) const;
  Status WriteCsv(const std::string& path) const;

 private:
  void ThreadLoop();

  const MetricsRegistry* const registry_;
  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;

  // Ring buffer: `ring_[i]` valid for i < min(total_, capacity); the
  // oldest retained sample sits at `total_ % capacity` once wrapped.
  std::vector<MetricsSample> ring_;
  uint64_t total_ = 0;
};

}  // namespace obs
}  // namespace uot

#endif  // UOT_OBS_METRICS_SAMPLER_H_
