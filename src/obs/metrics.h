#ifndef UOT_OBS_METRICS_H_
#define UOT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/macros.h"
#include "util/status.h"

namespace uot {
namespace obs {

/// A monotonically increasing 64-bit counter. `Add` is lock-free and
/// wraps on unsigned overflow (documented, tested behavior — the engine
/// never legitimately reaches 2^64 of anything, but a wrap must not abort
/// a query).
class Counter {
 public:
  Counter() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(Counter);

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable instantaneous value that also tracks its high-water mark
/// (max of all Set/Add results and 0). Lock-free.
class Gauge {
 public:
  Gauge() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(Gauge);

  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }

  void Add(int64_t delta) {
    const int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    UpdateMax(now);
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void UpdateMax(int64_t now) {
    int64_t peak = max_.load(std::memory_order_relaxed);
    while (now > peak && !max_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// A point-in-time digest of a histogram: totals plus the standard
/// latency quantiles, so callers report percentiles without re-deriving
/// them from raw buckets. `min`/`max` are 0 when the histogram is empty.
struct HistogramSnapshot {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  int64_t p50 = 0;
  int64_t p95 = 0;
  int64_t p99 = 0;
};

/// A fixed-bucket histogram. Bucket `i` counts values `v` with
/// `v <= upper_bounds[i]` (and `v > upper_bounds[i-1]`); one implicit
/// overflow bucket catches everything above the last bound. Recording is
/// lock-free.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<int64_t> upper_bounds);
  UOT_DISALLOW_COPY_AND_ASSIGN(Histogram);

  void Record(int64_t v);

  /// Number of buckets including the overflow bucket.
  size_t num_buckets() const { return bounds_.size() + 1; }
  /// Inclusive upper bound of bucket `i`; INT64_MAX for the overflow
  /// bucket.
  int64_t bucket_upper_bound(size_t i) const;
  uint64_t bucket_count(size_t i) const;

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t Min() const;  // INT64_MAX when empty
  int64_t Max() const;  // INT64_MIN when empty
  double Mean() const;

  /// Upper bound of the bucket containing the p-quantile (0 < p <= 1);
  /// 0 when empty.
  int64_t ApproxPercentile(double p) const;

  /// The p-quantile with linear interpolation inside the containing
  /// bucket, clamped to the observed [Min, Max] so a wide overflow or
  /// first bucket cannot report a value no sample ever had. 0 when empty.
  int64_t ValueAtQuantile(double p) const;

  /// Consistent-enough digest (count/sum/min/max/mean/p50/p95/p99) under
  /// concurrent recording; exact once recording has quiesced.
  HistogramSnapshot TakeSnapshot() const;

  /// `count` bounds starting at `first`, each `factor` times the last
  /// (rounded up so bounds stay strictly increasing).
  static std::vector<int64_t> ExponentialBounds(int64_t first, double factor,
                                                int count);
  /// Default latency grid: 1 us doubling up to ~8.5 s (24 buckets + inf).
  static const std::vector<int64_t>& DefaultLatencyBoundsNs();

 private:
  const std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// A registry of named counters/gauges/histograms for one execution (or a
/// longer scope — benches aggregate several runs into one registry).
///
/// `Get*` registers on first use and returns a stable pointer; callers on
/// hot paths resolve the pointer once and then operate lock-free. Names
/// are dot-separated, e.g. "scheduler.op.3.task_ns".
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  UOT_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// Registers with `upper_bounds` (or the default latency grid when
  /// empty). Bounds of an already registered histogram are not changed.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> upper_bounds = {});

  /// nullptr when the metric does not exist.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// One `(name, value)` pair per counter and per gauge, each name
  /// prefixed with its kind ("counter." / "gauge.") so the two namespaces
  /// stay distinct. Stable alphabetical order within each kind — the
  /// time-series sampler relies on this to keep columns aligned across
  /// samples. Counter values are cast to int64 (a wrap past 2^63 shows up
  /// negative, same caveat as the CSV export).
  std::vector<std::pair<std::string, int64_t>> SampleValues() const;

  /// Rows of `metric,kind,field,value` (one row per exported field; the
  /// header row comes first). Stable ordering: counters, gauges,
  /// histograms, each alphabetical.
  std::string ToCsv() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string ToJson() const;
  Status WriteCsv(const std::string& path) const;
  Status WriteJson(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace uot

#endif  // UOT_OBS_METRICS_H_
