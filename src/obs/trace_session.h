#ifndef UOT_OBS_TRACE_SESSION_H_
#define UOT_OBS_TRACE_SESSION_H_

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace_event.h"
#include "util/macros.h"
#include "util/status.h"

namespace uot {
namespace obs {

/// A low-overhead, thread-safe trace recorder for one query execution (or
/// any other traced scope).
///
/// Writers append fixed-size TraceEvent records into per-thread chunked
/// buffers: after a thread's first event (which registers its buffer under
/// a mutex), appends are plain stores into thread-owned memory — no locks,
/// no atomics, no allocation except a new chunk every kChunkEvents events.
/// Tracing is opt-in per execution: untraced runs carry a null session
/// pointer and pay only a branch at each instrumentation site.
///
/// Export (ExportChromeJson / WriteChromeJson) renders the merged,
/// time-sorted event stream as Chrome/Perfetto `trace_event` JSON — open
/// the file in https://ui.perfetto.dev or chrome://tracing. Export must
/// run after all writer threads have quiesced (the scheduler joins its
/// workers before returning, so tracing a query and exporting afterwards
/// is always safe).
class TraceSession {
 public:
  TraceSession();
  ~TraceSession();
  UOT_DISALLOW_COPY_AND_ASSIGN(TraceSession);

  /// Appends a span with explicit start/end timestamps (from NowNanos).
  void EmitComplete(TraceEventType type, uint32_t tid, int64_t start_ns,
                    int64_t end_ns, int32_t arg0 = -1, int32_t arg1 = -1,
                    int64_t value = 0);

  /// Appends a point event stamped with the current time.
  void EmitInstant(TraceEventType type, uint32_t tid, int32_t arg0 = -1,
                   int32_t arg1 = -1, int64_t value = 0);

  /// Appends a counter sample stamped with the current time.
  void EmitCounter(TraceEventType type, int32_t arg0, int64_t value);

  /// Appends a fully specified event.
  void Emit(const TraceEvent& event);

  /// Installs operator names so exported work-order spans carry
  /// human-readable "op_name" args (indexed by TraceEvent::arg0).
  void SetOperatorNames(std::vector<std::string> names);

  /// Names a tid track in the exported trace (e.g. "worker 3").
  void SetThreadName(uint32_t tid, std::string name);

  /// Total events recorded. Quiesced-read: call after writers finished.
  size_t num_events() const;

  /// All events merged across threads and sorted by timestamp.
  std::vector<TraceEvent> SortedEvents() const;

  /// Serializes the session as Chrome trace_event JSON.
  void ExportChromeJson(std::ostream& os) const;
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

  /// The session's time origin (NowNanos at construction); exported
  /// timestamps are relative to it.
  int64_t origin_ns() const { return origin_ns_; }

 private:
  struct Chunk;
  struct ThreadBuffer;

  ThreadBuffer* LocalBuffer();

  const uint64_t session_id_;  // globally unique, for thread-local caching
  const int64_t origin_ns_;
  mutable std::mutex mutex_;  // guards registration and name tables
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<std::thread::id, ThreadBuffer*> buffer_by_thread_;
  std::vector<std::string> op_names_;
  std::map<uint32_t, std::string> thread_names_;
};

}  // namespace obs
}  // namespace uot

#endif  // UOT_OBS_TRACE_SESSION_H_
