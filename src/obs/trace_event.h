#ifndef UOT_OBS_TRACE_EVENT_H_
#define UOT_OBS_TRACE_EVENT_H_

#include <cstdint>

namespace uot {
namespace obs {

/// The engine's trace-event taxonomy. Every instrumented site emits one of
/// these typed events; names and categories are resolved at export time so
/// the hot-path record stays a fixed-size POD.
enum class TraceEventType : uint8_t {
  /// Whole-query span (coordinator). value = number of work orders.
  kQuery = 0,
  /// One work-order execution span (worker). arg0 = operator index,
  /// arg1 = worker id.
  kWorkOrder,
  /// A UoT transfer delivered accumulated blocks over a streaming edge.
  /// arg0 = edge index, value = blocks delivered.
  kBlockTransfer,
  /// Final flush of a streaming edge when its producer finished.
  /// arg0 = edge index.
  kEdgeFlush,
  /// A producer work order was deferred by the memory-budget policy.
  /// arg0 = operator index, value = tracked bytes at deferral.
  kBudgetDefer,
  /// A budget-deferred work order was released. arg0 = operator index,
  /// value = tracked bytes at release.
  kBudgetRelease,
  /// A join hash table sized its slot array. arg1 = slots (saturated),
  /// value = allocated bytes.
  kHashTableReserve,
  /// An operator completed all work orders and flushed its output.
  /// arg0 = operator index.
  kOperatorFinish,
  /// Counter track: scheduler queue depth. arg0 = 0 for the work-order
  /// queue, 1 for the event queue; value = depth.
  kQueueDepth,
  /// Counter track: tracked memory per category. arg0 = MemoryCategory
  /// index, value = current bytes.
  kMemoryBytes,
  /// One stage of a batched join kernel over one batch (worker).
  /// arg0 = operator index, arg1 = JoinBatchStage, value = rows in batch.
  kJoinBatchStage,
  /// Counter track: the effective UoT of one streaming edge as resolved by
  /// the policy layer, in blocks per transfer. arg0 = edge index,
  /// value = blocks (0 stands in for whole-table; 0 blocks is otherwise
  /// invalid). Emitted at session start and whenever the value changes, so
  /// the track draws each edge's UoT trajectory.
  kUotEffective,
  /// The policy layer changed an edge's effective UoT mid-query.
  /// arg0 = edge index, arg1 = previous blocks (saturated to int32),
  /// value = new blocks; 0 stands in for whole-table on both sides.
  kUotAdapt,
  /// Why the policy layer landed on an edge's effective UoT: one instant
  /// per recorded decision (seed and every change). arg0 = edge index,
  /// arg1 = UotAdaptCause, value = new blocks (0 stands in for
  /// whole-table). Complements kUotAdapt, which carries the old/new pair
  /// but not the cause.
  kUotDecision,
};

/// Stages of the batched join kernels, recorded in kJoinBatchStage::arg1.
enum class JoinBatchStage : uint8_t {
  kExtract = 0,   // columnar key/residual extraction
  kProbe = 1,     // hash + prefetch + chain resolution
  kResidual = 2,  // residual-condition filtering of candidate matches
  kEmit = 3,      // output row assembly and append
  kInsert = 4,    // hash + prefetch + slot claim (build side)
  kPartition = 5, // hash + radix partition-id assignment (exchange)
  kScatter = 6,   // per-partition row scatter/append (exchange)
};

/// Stage name for kJoinBatchStage args ("extract", "probe", ...).
const char* JoinBatchStageName(int32_t stage);

/// Chrome trace_event phases the exporter knows how to render.
enum class TracePhase : uint8_t {
  kComplete,  // "ph":"X" — a span with a duration
  kInstant,   // "ph":"i" — a point event
  kCounter,   // "ph":"C" — a sampled counter track
};

/// Event name as it appears in the exported trace.
const char* TraceEventTypeName(TraceEventType type);

/// Event category ("cat" in the exported trace): exec, scheduler,
/// transfer, memory, or join.
const char* TraceEventTypeCategory(TraceEventType type);

/// A fixed-size trace record. Interpretation of arg0/arg1/value is per
/// TraceEventType (see the enum comments); unused fields stay at their
/// defaults. Timestamps are absolute monotonic nanoseconds (NowNanos);
/// the exporter rebases them to the session origin.
struct TraceEvent {
  int64_t ts_ns = 0;
  int64_t dur_ns = 0;
  int64_t value = 0;
  int32_t arg0 = -1;
  int32_t arg1 = -1;
  uint32_t tid = 0;
  TraceEventType type = TraceEventType::kQuery;
  TracePhase phase = TracePhase::kInstant;
};

}  // namespace obs
}  // namespace uot

#endif  // UOT_OBS_TRACE_EVENT_H_
