#ifndef UOT_OBS_JSON_LITE_H_
#define UOT_OBS_JSON_LITE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace uot {
namespace obs {

/// A minimal DOM for JSON documents the engine itself emits (query
/// profiles, metrics exports, time-series dumps). Like the trace
/// validator in trace_json.h it is dependency-free and strict — trailing
/// garbage, duplicate escapes, and truncated documents are errors — but
/// unlike the validator it materializes the document so tools such as
/// profile_explorer can navigate it. Not a general-purpose JSON library:
/// documents are expected to be small (profiles, not traces).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; CHECK-fail on kind mismatch (callers validate with
  /// the `is_*` predicates or `Find` first).
  bool AsBool() const;
  double AsDouble() const;
  int64_t AsInt64() const;  // truncating conversion of the parsed double
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;

  /// Object member lookup; nullptr when `this` is not an object or the
  /// key is absent.
  const JsonValue* Find(const std::string& key) const;
  /// Object member count; 0 for non-objects.
  size_t ObjectSize() const;
  /// Member names in insertion (= file) order; empty for non-objects.
  const std::vector<std::string>& ObjectKeys() const;

  /// Convenience: Find(key) when it is a number, else `fallback`.
  double NumberOr(const std::string& key, double fallback) const;
  /// Convenience: Find(key) when it is a string, else `fallback`.
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  /// Parses `json` into `*out`. The whole input must be one document:
  /// anything but trailing whitespace after the value is an error.
  static Status Parse(std::string_view json, JsonValue* out);

 private:
  friend class JsonLiteParser;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  // Insertion-ordered object storage: profiles are dumped in a meaningful
  // order and tools iterate in that order.
  std::vector<std::string> keys_;
  std::map<std::string, JsonValue> members_;
};

}  // namespace obs
}  // namespace uot

#endif  // UOT_OBS_JSON_LITE_H_
