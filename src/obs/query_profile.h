#ifndef UOT_OBS_QUERY_PROFILE_H_
#define UOT_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "scheduler/execution_stats.h"
#include "util/status.h"

namespace uot {

class QueryPlan;

namespace obs {

/// The structured post-run record of one query: everything ExecutionStats
/// measured, joined with what the Section V/VI cost model predicted
/// (QueryPlan::EdgePrediction), rendered as an EXPLAIN-ANALYZE-style
/// annotated plan (ToString) and as validated JSON (ToJson +
/// ParseQueryProfileJson). This is the observe half of the
/// observe-model-act loop: the residuals it computes are the ground truth
/// that tells us whether the model that chose each edge's UoT was right.
class QueryProfile {
 public:
  /// One streaming edge: measured transfer volume and footprint next to
  /// the model's expectation, and the residual (actual minus predicted)
  /// between them.
  struct Edge {
    int edge = -1;
    int producer = -1;
    int consumer = -1;
    std::string producer_name;
    std::string consumer_name;
    /// True for exchange/repartition edges: rendered with a distinct tag
    /// and a "kind" key in JSON (absent for pipeline edges, so profiles
    /// of exchange-free plans are byte-identical to pre-exchange ones).
    bool exchange = false;
    /// True when the edge was interior to a fused pipeline this run: no
    /// blocks crossed it, so its transfer counters are structurally zero.
    /// Tagged "kind": "fused" in JSON (absent otherwise, keeping
    /// pre-fusion documents byte-identical).
    bool fused = false;

    // Measured (EdgeStats).
    uint64_t transfers = 0;
    uint64_t blocks_produced = 0;
    uint64_t blocks_delivered = 0;
    uint64_t bytes_delivered = 0;
    uint64_t max_buffered_bytes = 0;
    uint64_t max_buffered_blocks = 0;
    uint64_t final_uot_blocks = 0;  // UotPolicy::kWholeTable = materialize

    // Predicted (QueryPlan::EdgePrediction); valid iff has_prediction.
    bool has_prediction = false;
    uint64_t predicted_uot_blocks = 0;
    uint64_t est_rows = 0;
    uint64_t est_bytes = 0;
    uint64_t est_blocks = 0;
    uint64_t predicted_transfers = 0;
    uint64_t predicted_footprint_bytes = 0;
    double predicted_cost_ns = 0.0;
    std::string reason;

    // Residuals, actual minus predicted; 0 when has_prediction is false.
    int64_t residual_transfers = 0;
    int64_t residual_bytes = 0;
    int64_t residual_footprint_bytes = 0;

    /// max(|residual_transfers| / predicted_transfers,
    ///     |residual_bytes| / est_bytes) — the edge's worst relative
    /// calibration error (0 without a prediction; denominator floors at
    /// 1 so empty estimates do not divide by zero).
    double WorstRelativeError() const;
  };

  /// One operator: the per-operator aggregate plus a latency digest of
  /// its work orders (p50/p95/p99 over the default latency grid).
  struct OperatorEntry {
    int op = -1;
    std::string name;
    uint64_t num_work_orders = 0;
    int64_t total_task_ns = 0;
    int64_t first_start_ns = 0;
    int64_t last_end_ns = 0;
    double avg_dop = 0.0;
    HistogramSnapshot latency;
  };

  struct Options {
    /// Label in reports and JSON ("q3"); empty = "query".
    std::string query_name;
  };

  /// Assembles a profile from a finished run. `plan` supplies operator
  /// wiring and model predictions; pass nullptr when the plan is gone
  /// (measured-only profile, no residuals).
  static QueryProfile FromRun(const QueryPlan* plan,
                              const ExecutionStats& stats,
                              Options options = {});

  const std::string& query_name() const { return query_name_; }
  const ExecutionStats& stats() const { return stats_; }
  const std::vector<OperatorEntry>& operators() const { return operators_; }
  const std::vector<Edge>& edges() const { return edges_; }
  /// Latency digest over every work order of the query.
  const HistogramSnapshot& work_order_latency() const {
    return work_order_latency_;
  }

  /// The EXPLAIN-ANALYZE-style annotated plan: operators with work-order
  /// counts/time/DoP/latency percentiles, edges with measured vs
  /// predicted transfers/bytes/footprint and residuals, memory peaks,
  /// budget events, and the UoT decision log.
  std::string ToString() const;

  /// The model-calibration report: only edges with predictions, ranked by
  /// WorstRelativeError, with predicted vs actual columns. Empty string
  /// when no edge carries a prediction.
  std::string CalibrationReport() const;

  /// Structured JSON (parse with JsonValue::Parse, validate with
  /// ParseQueryProfileJson). UoT block values are encoded signed: -1
  /// stands for whole-table, 0 for "none/unresolved".
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  /// Exports `model.residual.edge.<i>.{transfers,bytes,footprint_bytes}`
  /// gauges (actual minus predicted) for every predicted edge, prefixed
  /// with `prefix`, so benches and the adaptive layer read calibration
  /// ground truth from the registry they already consume.
  void ExportResidualMetrics(MetricsRegistry* registry,
                             const std::string& prefix = "") const;

 private:
  std::string query_name_;
  ExecutionStats stats_;
  std::vector<OperatorEntry> operators_;
  std::vector<Edge> edges_;
  HistogramSnapshot work_order_latency_;
};

/// What a structural validation of a profile JSON document found; the
/// profile analogue of ChromeTraceSummary.
struct QueryProfileSummary {
  std::string query_name;
  uint64_t query_id = 0;
  size_t num_operators = 0;
  size_t num_edges = 0;
  size_t num_predicted_edges = 0;  // edges carrying prediction+residuals
  size_t num_exchange_edges = 0;   // edges tagged "kind": "exchange"
  size_t num_fused_edges = 0;      // edges tagged "kind": "fused"
  size_t num_exchanges = 0;        // entries of the "exchanges" section
  size_t num_fused_chains = 0;     // entries of the "fused_pipelines" section
  size_t num_uot_decisions = 0;
  size_t num_budget_events = 0;
  bool profiled = false;
};

/// Validates that `json` is a well-formed profile document — top-level
/// object with "query"/"operators"/"edges"/"memory"/"budget"/"uot"
/// sections of the right shapes — and fills `summary`. Dependency-free
/// (json_lite), same role the trace validator plays for trace exports.
Status ParseQueryProfileJson(std::string_view json,
                             QueryProfileSummary* summary);

}  // namespace obs
}  // namespace uot

#endif  // UOT_OBS_QUERY_PROFILE_H_
