#include "obs/trace_json.h"

#include <cctype>
#include <cstdlib>
#include <string>

#include "util/macros.h"

namespace uot {
namespace obs {
namespace {

/// A minimal recursive-descent JSON parser. It validates syntax and
/// surfaces just enough structure (the "traceEvents" array, each event's
/// "ph" and "ts") for trace validation. No DOM is built.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Status Parse(ChromeTraceSummary* summary) {
    summary_ = summary;
    SkipWhitespace();
    UOT_RETURN_IF_ERROR(ParseTopLevelObject());
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing characters after top-level object");
    }
    if (!saw_trace_events_) {
      return Error("missing \"traceEvents\" array");
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("trace JSON invalid at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' ||
            input_[pos_] == '\n' || input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char ch) {
    if (pos_ < input_.size() && input_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char ch) {
    if (!Consume(ch)) {
      return Error(std::string("expected '") + ch + "'");
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    UOT_RETURN_IF_ERROR(Expect('"'));
    while (pos_ < input_.size()) {
      const char ch = input_[pos_];
      if (ch == '"') {
        ++pos_;
        return Status::OK();
      }
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= input_.size()) break;
        const char esc = input_[pos_];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            if (out != nullptr) out->push_back(esc);
            ++pos_;
            break;
          case 'u': {
            if (pos_ + 4 >= input_.size()) return Error("truncated \\u");
            for (int i = 1; i <= 4; ++i) {
              if (!std::isxdigit(
                      static_cast<unsigned char>(input_[pos_ + i]))) {
                return Error("bad \\u escape");
              }
            }
            pos_ += 5;
            break;
          }
          default:
            return Error("bad escape character");
        }
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        if (out != nullptr) out->push_back(ch);
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(double* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= input_.size() ||
        !std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      return Error("malformed number");
    }
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      if (pos_ >= input_.size() ||
          !std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        return Error("malformed fraction");
      }
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < input_.size() && (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < input_.size() &&
          (input_[pos_] == '+' || input_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= input_.size() ||
          !std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        return Error("malformed exponent");
      }
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (out != nullptr) {
      *out = std::strtod(std::string(input_.substr(start, pos_ - start)).c_str(),
                         nullptr);
    }
    return Status::OK();
  }

  Status ParseLiteral(std::string_view word) {
    if (input_.substr(pos_, word.size()) != word) {
      return Error("bad literal");
    }
    pos_ += word.size();
    return Status::OK();
  }

  /// Any JSON value, validated and discarded.
  Status ParseValue() {
    SkipWhitespace();
    if (pos_ >= input_.size()) return Error("unexpected end of input");
    switch (input_[pos_]) {
      case '{': return ParseObject(nullptr, nullptr);
      case '[': return ParseArray();
      case '"': return ParseString(nullptr);
      case 't': return ParseLiteral("true");
      case 'f': return ParseLiteral("false");
      case 'n': return ParseLiteral("null");
      default: return ParseNumber(nullptr);
    }
  }

  /// Parses an object. When `ph`/`ts` are non-null, captures those members
  /// of this object (used for trace events).
  Status ParseObject(std::string* ph, double* ts) {
    UOT_RETURN_IF_ERROR(Expect('{'));
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      UOT_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      UOT_RETURN_IF_ERROR(Expect(':'));
      SkipWhitespace();
      if (ph != nullptr && key == "ph" && pos_ < input_.size() &&
          input_[pos_] == '"') {
        UOT_RETURN_IF_ERROR(ParseString(ph));
      } else if (ts != nullptr && key == "ts") {
        UOT_RETURN_IF_ERROR(ParseNumber(ts));
        *ts_seen_ = true;
      } else {
        UOT_RETURN_IF_ERROR(ParseValue());
      }
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect('}');
    }
  }

  Status ParseArray() {
    UOT_RETURN_IF_ERROR(Expect('['));
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      UOT_RETURN_IF_ERROR(ParseValue());
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect(']');
    }
  }

  Status ParseTraceEventsArray() {
    UOT_RETURN_IF_ERROR(Expect('['));
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != '{') {
        return Error("trace event is not an object");
      }
      std::string ph;
      double ts = 0.0;
      bool ts_seen = false;
      ts_seen_ = &ts_seen;
      UOT_RETURN_IF_ERROR(ParseObject(&ph, &ts));
      ts_seen_ = nullptr;
      ++summary_->num_events;
      if (ph == "X") ++summary_->num_complete;
      else if (ph == "i" || ph == "I") ++summary_->num_instant;
      else if (ph == "C") ++summary_->num_counter;
      else if (ph == "M") ++summary_->num_metadata;
      if (ph != "M") {
        if (!ts_seen) return Error("timestamped event missing \"ts\"");
        if (have_prev_ts_ && ts < prev_ts_) {
          summary_->timestamps_monotonic = false;
        }
        if (!have_prev_ts_) summary_->first_ts_us = ts;
        have_prev_ts_ = true;
        prev_ts_ = ts;
        summary_->last_ts_us = ts;
      }
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect(']');
    }
  }

  Status ParseTopLevelObject() {
    UOT_RETURN_IF_ERROR(Expect('{'));
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      UOT_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      UOT_RETURN_IF_ERROR(Expect(':'));
      SkipWhitespace();
      if (key == "traceEvents") {
        if (pos_ >= input_.size() || input_[pos_] != '[') {
          return Error("\"traceEvents\" is not an array");
        }
        saw_trace_events_ = true;
        UOT_RETURN_IF_ERROR(ParseTraceEventsArray());
      } else {
        UOT_RETURN_IF_ERROR(ParseValue());
      }
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect('}');
    }
  }

  const std::string_view input_;
  size_t pos_ = 0;
  ChromeTraceSummary* summary_ = nullptr;
  bool saw_trace_events_ = false;
  bool* ts_seen_ = nullptr;
  bool have_prev_ts_ = false;
  double prev_ts_ = 0.0;
};

}  // namespace

Status ParseChromeTraceJson(std::string_view json,
                            ChromeTraceSummary* summary) {
  UOT_CHECK(summary != nullptr);
  *summary = ChromeTraceSummary{};
  Parser parser(json);
  return parser.Parse(summary);
}

}  // namespace obs
}  // namespace uot
