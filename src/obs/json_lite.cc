#include "obs/json_lite.h"

#include <cmath>
#include <cstdlib>

#include "util/macros.h"

namespace uot {
namespace obs {

bool JsonValue::AsBool() const {
  UOT_CHECK(is_bool());
  return bool_;
}

double JsonValue::AsDouble() const {
  UOT_CHECK(is_number());
  return number_;
}

int64_t JsonValue::AsInt64() const {
  UOT_CHECK(is_number());
  return static_cast<int64_t>(number_);
}

const std::string& JsonValue::AsString() const {
  UOT_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  UOT_CHECK(is_array());
  return array_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = members_.find(key);
  return it == members_.end() ? nullptr : &it->second;
}

size_t JsonValue::ObjectSize() const {
  return is_object() ? members_.size() : 0;
}

const std::vector<std::string>& JsonValue::ObjectKeys() const {
  static const std::vector<std::string>* kEmpty =
      new std::vector<std::string>();
  return is_object() ? keys_ : *kEmpty;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : fallback;
}

/// Recursive-descent parser over the raw bytes; same strictness rules as
/// the streaming validator in trace_json.cc, but builds a JsonValue tree.
/// Namespace-scope (not anonymous) so the friend declaration in
/// json_lite.h binds to it.
class JsonLiteParser {
 public:
  explicit JsonLiteParser(std::string_view input) : input_(input) {}

  Status ParseDocument(JsonValue* out) {
    SkipWhitespace();
    UOT_RETURN_IF_ERROR(ParseValue(out, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing characters after JSON document");
    }
    return Status::OK();
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json_lite: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }

  Status Expect(char c) {
    if (AtEnd() || input_[pos_] != c) {
      return Error(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (AtEnd()) return Error("unexpected end of input");
    switch (Peek()) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      }
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    UOT_RETURN_IF_ERROR(Expect('{'));
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      UOT_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      UOT_RETURN_IF_ERROR(Expect(':'));
      SkipWhitespace();
      JsonValue member;
      UOT_RETURN_IF_ERROR(ParseValue(&member, depth + 1));
      if (out->members_.count(key) != 0) {
        return Error("duplicate object key \"" + key + "\"");
      }
      out->keys_.push_back(key);
      out->members_.emplace(std::move(key), std::move(member));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated object");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect('}');
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    UOT_RETURN_IF_ERROR(Expect('['));
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      JsonValue element;
      UOT_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->array_.push_back(std::move(element));
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated array");
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  Status ParseString(std::string* out) {
    UOT_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const char c = input_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (AtEnd()) return Error("unterminated escape");
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t code = 0;
          UOT_RETURN_IF_ERROR(ParseHex4(&code));
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00..\uDFFF
            // escape, together naming a supplementary-plane code point.
            if (input_.compare(pos_, 2, "\\u") != 0) {
              return Error("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            uint32_t low = 0;
            UOT_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("bad low surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired low surrogate in \\u escape");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
  }

  /// Parses exactly four hex digits into `*code`.
  Status ParseHex4(uint32_t* code) {
    *code = 0;
    for (int i = 0; i < 4; ++i) {
      if (AtEnd()) return Error("truncated \\u escape");
      const char h = input_[pos_++];
      *code <<= 4;
      if (h >= '0' && h <= '9') *code |= static_cast<uint32_t>(h - '0');
      else if (h >= 'a' && h <= 'f') *code |= static_cast<uint32_t>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') *code |= static_cast<uint32_t>(h - 'A' + 10);
      else return Error("bad hex digit in \\u escape");
    }
    return Status::OK();
  }

  /// Appends the UTF-8 encoding of a code point (<= U+10FFFF, surrogates
  /// already resolved by the caller).
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseLiteral(JsonValue* out) {
    if (input_.compare(pos_, 4, "true") == 0) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      pos_ += 4;
      return Status::OK();
    }
    if (input_.compare(pos_, 5, "false") == 0) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      pos_ += 5;
      return Status::OK();
    }
    return Error("bad literal");
  }

  Status ParseNull(JsonValue* out) {
    if (input_.compare(pos_, 4, "null") == 0) {
      out->kind_ = JsonValue::Kind::kNull;
      pos_ += 4;
      return Status::OK();
    }
    return Error("bad literal");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (!AtEnd() && Peek() == '-') ++pos_;
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      pos_ = start;
      return Error("bad number");
    }
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("bad fraction");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      ++pos_;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) ++pos_;
      if (AtEnd() || Peek() < '0' || Peek() > '9') {
        return Error("bad exponent");
      }
      while (!AtEnd() && Peek() >= '0' && Peek() <= '9') ++pos_;
    }
    const std::string text(input_.substr(start, pos_ - start));
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = std::strtod(text.c_str(), nullptr);
    if (!std::isfinite(out->number_)) return Error("non-finite number");
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
};

Status JsonValue::Parse(std::string_view json, JsonValue* out) {
  UOT_CHECK(out != nullptr);
  *out = JsonValue();
  JsonLiteParser parser(json);
  return parser.ParseDocument(out);
}

}  // namespace obs
}  // namespace uot
