#include "obs/metrics_sampler.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/timer.h"

namespace uot {
namespace obs {

MetricsSampler::MetricsSampler(const MetricsRegistry* registry,
                               Options options)
    : registry_(registry), options_(std::move(options)) {
  UOT_CHECK(registry_ != nullptr);
  UOT_CHECK(options_.capacity >= 1);
  ring_.resize(options_.capacity);
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread(&MetricsSampler::ThreadLoop, this);
}

void MetricsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    running_ = false;
  }
  SampleOnce();
}

bool MetricsSampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

void MetricsSampler::SampleOnce() {
  if (options_.pre_sample) options_.pre_sample();
  MetricsSample sample;
  sample.t_ns = NowNanos();
  sample.values = registry_->SampleValues();
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[total_ % ring_.size()] = std::move(sample);
  ++total_;
}

void MetricsSampler::ThreadLoop() {
  const auto interval = std::chrono::milliseconds(
      options_.interval_ms < 1 ? 1 : options_.interval_ms);
  while (true) {
    SampleOnce();
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

uint64_t MetricsSampler::total_samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::vector<MetricsSample> MetricsSampler::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricsSample> out;
  const uint64_t retained =
      total_ < ring_.size() ? total_ : static_cast<uint64_t>(ring_.size());
  out.reserve(static_cast<size_t>(retained));
  const uint64_t first = total_ - retained;
  for (uint64_t i = first; i < total_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsSampler::ToJson() const {
  const std::vector<MetricsSample> samples = Snapshot();
  char buf[64];
  std::string out = "{\n";
  std::snprintf(buf, sizeof(buf), "  \"interval_ms\": %" PRId64 ",\n",
                options_.interval_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"total_samples\": %" PRIu64 ",\n",
                total_samples());
  out += buf;
  out += "  \"samples\": [";
  for (size_t i = 0; i < samples.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    std::snprintf(buf, sizeof(buf), "    {\"t_ns\": %" PRId64
                  ", \"values\": {", samples[i].t_ns);
    out += buf;
    for (size_t j = 0; j < samples[i].values.size(); ++j) {
      if (j > 0) out += ", ";
      AppendJsonString(&out, samples[i].values[j].first);
      std::snprintf(buf, sizeof(buf), ": %" PRId64,
                    samples[i].values[j].second);
      out += buf;
    }
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string MetricsSampler::ToCsv() const {
  const std::vector<MetricsSample> samples = Snapshot();
  std::string out = "t_ns,metric,value\n";
  char buf[96];
  for (const MetricsSample& sample : samples) {
    for (const auto& [name, value] : sample.values) {
      std::snprintf(buf, sizeof(buf), "%" PRId64 ",", sample.t_ns);
      out += buf;
      out += name;  // metric names never contain CSV specials
      std::snprintf(buf, sizeof(buf), ",%" PRId64 "\n", value);
      out += buf;
    }
  }
  return out;
}

namespace {

Status WriteWholeFile(const std::string& path, const std::string& contents,
                      const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument(std::string("cannot open ") + what +
                                   " output: " + path);
  }
  out << contents;
  out.flush();
  if (!out.good()) {
    return Status::Internal(std::string("short write to ") + what +
                            " output: " + path);
  }
  return Status::OK();
}

}  // namespace

Status MetricsSampler::WriteJson(const std::string& path) const {
  return WriteWholeFile(path, ToJson(), "time-series JSON");
}

Status MetricsSampler::WriteCsv(const std::string& path) const {
  return WriteWholeFile(path, ToCsv(), "time-series CSV");
}

}  // namespace obs
}  // namespace uot
