#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace uot {
namespace obs {

Histogram::Histogram(std::vector<int64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  UOT_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    UOT_CHECK(bounds_[i] > bounds_[i - 1]);
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(num_buckets());
  for (size_t i = 0; i < num_buckets(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Record(int64_t v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t lo = min_.load(std::memory_order_relaxed);
  while (v < lo &&
         !min_.compare_exchange_weak(lo, v, std::memory_order_relaxed)) {
  }
  int64_t hi = max_.load(std::memory_order_relaxed);
  while (v > hi &&
         !max_.compare_exchange_weak(hi, v, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::bucket_upper_bound(size_t i) const {
  UOT_CHECK(i < num_buckets());
  return i < bounds_.size() ? bounds_[i] : INT64_MAX;
}

uint64_t Histogram::bucket_count(size_t i) const {
  UOT_CHECK(i < num_buckets());
  return counts_[i].load(std::memory_order_relaxed);
}

int64_t Histogram::Min() const { return min_.load(std::memory_order_relaxed); }
int64_t Histogram::Max() const { return max_.load(std::memory_order_relaxed); }

double Histogram::Mean() const {
  const uint64_t n = TotalCount();
  if (n == 0) return 0.0;
  return static_cast<double>(Sum()) / static_cast<double>(n);
}

int64_t Histogram::ApproxPercentile(double p) const {
  const uint64_t n = TotalCount();
  if (n == 0) return 0;
  const uint64_t rank = static_cast<uint64_t>(
      p * static_cast<double>(n) + 0.999999);  // ceil(p * n), 1-based
  uint64_t seen = 0;
  for (size_t i = 0; i < num_buckets(); ++i) {
    seen += bucket_count(i);
    if (seen >= rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(num_buckets() - 1);
}

int64_t Histogram::ValueAtQuantile(double p) const {
  const uint64_t n = TotalCount();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(
      p * static_cast<double>(n) + 0.999999);  // ceil(p * n), 1-based
  if (rank == 0) rank = 1;
  const int64_t lo_observed = Min();
  const int64_t hi_observed = Max();
  uint64_t seen = 0;
  for (size_t i = 0; i < num_buckets(); ++i) {
    const uint64_t in_bucket = bucket_count(i);
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Interpolate between the bucket's edges; the first bucket starts at
      // the observed minimum and the overflow bucket ends at the observed
      // maximum, since their nominal edges are unbounded.
      const double lower =
          i == 0 ? static_cast<double>(lo_observed)
                 : static_cast<double>(bounds_[i - 1]);
      const double upper = i < bounds_.size()
                               ? static_cast<double>(bounds_[i])
                               : static_cast<double>(hi_observed);
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(in_bucket);
      double v = lower + (upper - lower) * frac;
      if (v < static_cast<double>(lo_observed)) {
        v = static_cast<double>(lo_observed);
      }
      if (v > static_cast<double>(hi_observed)) {
        v = static_cast<double>(hi_observed);
      }
      return static_cast<int64_t>(v);
    }
    seen += in_bucket;
  }
  return hi_observed;
}

HistogramSnapshot Histogram::TakeSnapshot() const {
  HistogramSnapshot snap;
  snap.count = TotalCount();
  if (snap.count == 0) return snap;
  snap.sum = Sum();
  snap.min = Min();
  snap.max = Max();
  snap.mean = Mean();
  snap.p50 = ValueAtQuantile(0.50);
  snap.p95 = ValueAtQuantile(0.95);
  snap.p99 = ValueAtQuantile(0.99);
  return snap;
}

std::vector<int64_t> Histogram::ExponentialBounds(int64_t first,
                                                  double factor, int count) {
  UOT_CHECK(first > 0 && factor > 1.0 && count >= 1);
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = static_cast<double>(first);
  int64_t prev = 0;
  for (int i = 0; i < count; ++i) {
    int64_t b = static_cast<int64_t>(bound);
    if (b <= prev) b = prev + 1;
    bounds.push_back(b);
    prev = b;
    bound *= factor;
  }
  return bounds;
}

const std::vector<int64_t>& Histogram::DefaultLatencyBoundsNs() {
  static const std::vector<int64_t>* kBounds =
      new std::vector<int64_t>(ExponentialBounds(1000, 2.0, 24));
  return *kBounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) {
    if (upper_bounds.empty()) upper_bounds = Histogram::DefaultLatencyBoundsNs();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::SampleValues()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back("counter." + name,
                     static_cast<int64_t>(counter->Value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back("gauge." + name, gauge->Value());
  }
  return out;
}

namespace {

/// CSV-quotes `s` when it contains a delimiter, quote, or newline.
std::string CsvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}

void CsvRow(std::string* out, const std::string& metric, const char* kind,
            const std::string& field, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  *out += CsvField(metric) + "," + kind + "," + field + "," + buf + "\n";
}

void CsvRowU(std::string* out, const std::string& metric, const char* kind,
             const std::string& field, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += CsvField(metric) + "," + kind + "," + field + "," + buf + "\n";
}

}  // namespace

std::string MetricsRegistry::ToCsv() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "metric,kind,field,value\n";
  for (const auto& [name, counter] : counters_) {
    CsvRowU(&out, name, "counter", "value", counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    CsvRow(&out, name, "gauge", "value", gauge->Value());
    CsvRow(&out, name, "gauge", "max", gauge->Max());
  }
  for (const auto& [name, histogram] : histograms_) {
    CsvRowU(&out, name, "histogram", "count", histogram->TotalCount());
    CsvRow(&out, name, "histogram", "sum", histogram->Sum());
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      const int64_t bound = histogram->bucket_upper_bound(i);
      std::string field;
      if (bound == INT64_MAX) {
        field = "le_inf";
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "le_%" PRId64, bound);
        field = buf;
      }
      CsvRowU(&out, name, "histogram", field, histogram->bucket_count(i));
    }
  }
  return out;
}

namespace {

void AppendJsonName(std::string* out, const std::string& name) {
  out->push_back('"');
  for (char ch : name) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
  out->push_back('"');
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\n  \"counters\": {";
  char buf[64];
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonName(&out, name);
    std::snprintf(buf, sizeof(buf), ": %" PRIu64, counter->Value());
    out += buf;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonName(&out, name);
    std::snprintf(buf, sizeof(buf), ": {\"value\": %" PRId64
                  ", \"max\": %" PRId64 "}",
                  gauge->Value(), gauge->Max());
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonName(&out, name);
    std::snprintf(buf, sizeof(buf), ": {\"count\": %" PRIu64
                  ", \"sum\": %" PRId64 ", \"buckets\": [",
                  histogram->TotalCount(), histogram->Sum());
    out += buf;
    for (size_t i = 0; i < histogram->num_buckets(); ++i) {
      if (i > 0) out += ", ";
      const int64_t bound = histogram->bucket_upper_bound(i);
      if (bound == INT64_MAX) {
        std::snprintf(buf, sizeof(buf), "{\"le\": \"inf\", \"count\": %" PRIu64
                      "}", histogram->bucket_count(i));
      } else {
        std::snprintf(buf, sizeof(buf), "{\"le\": %" PRId64
                      ", \"count\": %" PRIu64 "}",
                      bound, histogram->bucket_count(i));
      }
      out += buf;
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

namespace {

Status WriteWholeFile(const std::string& path, const std::string& contents,
                      const char* what) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument(std::string("cannot open ") + what +
                                   " output: " + path);
  }
  out << contents;
  out.flush();
  if (!out.good()) {
    return Status::Internal(std::string("short write to ") + what +
                            " output: " + path);
  }
  return Status::OK();
}

}  // namespace

Status MetricsRegistry::WriteCsv(const std::string& path) const {
  return WriteWholeFile(path, ToCsv(), "metrics CSV");
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  return WriteWholeFile(path, ToJson(), "metrics JSON");
}

}  // namespace obs
}  // namespace uot
