#include "obs/query_profile.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/json_lite.h"
#include "plan/query_plan.h"

namespace uot {
namespace obs {

namespace {

/// UoT block counts in JSON are signed: -1 = whole-table, 0 = none.
int64_t JsonUot(uint64_t blocks) {
  if (blocks == UotPolicy::kWholeTable) return -1;
  return static_cast<int64_t>(blocks);
}

std::string FormatUot(uint64_t blocks) {
  if (blocks == 0) return "none";
  if (blocks == UotPolicy::kWholeTable) return "whole-table";
  return std::to_string(blocks);
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(bytes) / (1 << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB",
                  static_cast<double>(bytes) / (1 << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  }
  return buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out->push_back('\\');
    out->push_back(ch);
  }
  out->push_back('"');
}

void AppendField(std::string* out, const char* key, int64_t value,
                 bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  *out += buf;
}

void AppendFieldU(std::string* out, const char* key, uint64_t value,
                  bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

void AppendFieldD(std::string* out, const char* key, double value,
                  bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

void AppendFieldS(std::string* out, const char* key, const std::string& value,
                  bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += '"';
  *out += key;
  *out += "\": ";
  AppendJsonString(out, value);
}

void AppendSnapshot(std::string* out, const HistogramSnapshot& snap) {
  bool first = true;
  *out += '{';
  AppendFieldU(out, "count", snap.count, &first);
  AppendField(out, "sum", snap.sum, &first);
  AppendField(out, "min", snap.min, &first);
  AppendField(out, "max", snap.max, &first);
  AppendFieldD(out, "mean", snap.mean, &first);
  AppendField(out, "p50", snap.p50, &first);
  AppendField(out, "p95", snap.p95, &first);
  AppendField(out, "p99", snap.p99, &first);
  *out += '}';
}

HistogramSnapshot SnapshotOfDurations(const std::vector<WorkOrderRecord>& records,
                                      int op) {
  Histogram histogram(Histogram::DefaultLatencyBoundsNs());
  for (const WorkOrderRecord& r : records) {
    if (op >= 0 && r.op != op) continue;
    histogram.Record(r.duration_ns());
  }
  return histogram.TakeSnapshot();
}

}  // namespace

double QueryProfile::Edge::WorstRelativeError() const {
  if (!has_prediction) return 0.0;
  const double transfer_den =
      static_cast<double>(std::max<uint64_t>(1, predicted_transfers));
  const double bytes_den =
      static_cast<double>(std::max<uint64_t>(1, est_bytes));
  return std::max(
      std::abs(static_cast<double>(residual_transfers)) / transfer_den,
      std::abs(static_cast<double>(residual_bytes)) / bytes_den);
}

QueryProfile QueryProfile::FromRun(const QueryPlan* plan,
                                   const ExecutionStats& stats,
                                   Options options) {
  QueryProfile profile;
  profile.query_name_ =
      options.query_name.empty() ? "query" : options.query_name;
  profile.stats_ = stats;
  profile.work_order_latency_ = SnapshotOfDurations(stats.records, -1);

  profile.operators_.reserve(stats.operators.size());
  for (size_t i = 0; i < stats.operators.size(); ++i) {
    const OperatorStats& os = stats.operators[i];
    OperatorEntry entry;
    entry.op = static_cast<int>(i);
    entry.name = os.name;
    entry.num_work_orders = os.num_work_orders;
    entry.total_task_ns = os.total_task_ns;
    entry.first_start_ns = os.first_start_ns;
    entry.last_end_ns = os.last_end_ns;
    entry.avg_dop = stats.AverageDop(static_cast<int>(i));
    entry.latency = SnapshotOfDurations(stats.records, static_cast<int>(i));
    profile.operators_.push_back(std::move(entry));
  }

  profile.edges_.reserve(stats.edges.size());
  for (size_t i = 0; i < stats.edges.size(); ++i) {
    const EdgeStats& es = stats.edges[i];
    Edge edge;
    edge.edge = static_cast<int>(i);
    edge.producer = es.producer;
    edge.consumer = es.consumer;
    if (es.producer >= 0 &&
        static_cast<size_t>(es.producer) < stats.operators.size()) {
      edge.producer_name = stats.operators[static_cast<size_t>(es.producer)].name;
    }
    if (es.consumer >= 0 &&
        static_cast<size_t>(es.consumer) < stats.operators.size()) {
      edge.consumer_name = stats.operators[static_cast<size_t>(es.consumer)].name;
    }
    edge.exchange = es.exchange;
    edge.fused = es.fused;
    edge.transfers = es.transfers;
    edge.blocks_produced = es.blocks_produced;
    edge.blocks_delivered = es.blocks_delivered;
    edge.bytes_delivered = es.bytes_delivered;
    edge.max_buffered_bytes = es.max_buffered_bytes;
    edge.max_buffered_blocks = es.max_buffered_blocks;
    edge.final_uot_blocks = es.final_uot_blocks;

    if (plan != nullptr &&
        static_cast<size_t>(plan->streaming_edges().size()) ==
            stats.edges.size()) {
      const auto prediction = plan->edge_prediction(static_cast<int>(i));
      if (prediction.has_value()) {
        edge.has_prediction = true;
        edge.predicted_uot_blocks = prediction->uot_blocks;
        edge.est_rows = prediction->est_rows;
        edge.est_bytes = prediction->est_bytes;
        edge.est_blocks = prediction->est_blocks;
        edge.predicted_transfers = prediction->predicted_transfers;
        edge.predicted_footprint_bytes = prediction->predicted_footprint_bytes;
        edge.predicted_cost_ns = prediction->predicted_cost_ns;
        edge.reason = prediction->reason;
        edge.residual_transfers =
            static_cast<int64_t>(edge.transfers) -
            static_cast<int64_t>(edge.predicted_transfers);
        edge.residual_bytes = static_cast<int64_t>(edge.bytes_delivered) -
                              static_cast<int64_t>(edge.est_bytes);
        edge.residual_footprint_bytes =
            static_cast<int64_t>(edge.max_buffered_bytes) -
            static_cast<int64_t>(edge.predicted_footprint_bytes);
      }
    }
    profile.edges_.push_back(std::move(edge));
  }
  return profile;
}

std::string QueryProfile::ToString() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "QueryProfile{%s, query_id=%" PRIu64
                ", %.2f ms, admission_wait=%.2f ms, %zu work orders%s}\n",
                query_name_.c_str(), stats_.query_id, stats_.QueryMillis(),
                static_cast<double>(stats_.admission_wait_ns) / 1e6,
                stats_.records.size(),
                stats_.profiled ? "" : " [profile logs off]");
  out += buf;
  for (const OperatorEntry& op : operators_) {
    std::snprintf(buf, sizeof(buf),
                  "  op[%d] %s: %" PRIu64
                  " work orders, task %.2f ms, span %.2f ms, dop %.2f, "
                  "p50/p95/p99 %.2f/%.2f/%.2f ms\n",
                  op.op, op.name.c_str(), op.num_work_orders,
                  static_cast<double>(op.total_task_ns) / 1e6,
                  static_cast<double>(op.last_end_ns - op.first_start_ns) /
                      1e6,
                  op.avg_dop, static_cast<double>(op.latency.p50) / 1e6,
                  static_cast<double>(op.latency.p95) / 1e6,
                  static_cast<double>(op.latency.p99) / 1e6);
    out += buf;
  }
  for (const Edge& e : edges_) {
    std::snprintf(buf, sizeof(buf),
                  "  %s[%d] op%d -> op%d: uot=%s, transfers=%" PRIu64
                  ", delivered %s in %" PRIu64
                  " blocks, footprint peak %s",
                  e.fused ? "fused" : e.exchange ? "xchg" : "edge",
                  e.edge, e.producer,
                  e.consumer, FormatUot(e.final_uot_blocks).c_str(),
                  e.transfers, FormatBytes(e.bytes_delivered).c_str(),
                  e.blocks_delivered,
                  FormatBytes(e.max_buffered_bytes).c_str());
    out += buf;
    if (e.has_prediction) {
      std::snprintf(buf, sizeof(buf),
                    " | model: uot=%s, transfers=%" PRIu64 " (resid %+" PRId64
                    "), bytes=%s (resid %+" PRId64
                    "), footprint=%s (resid %+" PRId64 ") [%s]",
                    FormatUot(e.predicted_uot_blocks).c_str(),
                    e.predicted_transfers, e.residual_transfers,
                    FormatBytes(e.est_bytes).c_str(), e.residual_bytes,
                    FormatBytes(e.predicted_footprint_bytes).c_str(),
                    e.residual_footprint_bytes, e.reason.c_str());
      out += buf;
    }
    out += "\n";
  }
  for (const FusedChainStats& f : stats_.fused_chains) {
    std::string ops;
    for (size_t i = 0; i < f.ops.size(); ++i) {
      if (i > 0) ops += "->";
      ops += "op" + std::to_string(f.ops[i]);
    }
    std::snprintf(buf, sizeof(buf),
                  "  fused pipeline %s: %" PRIu64
                  " work orders, 0 intermediate transfers\n",
                  ops.c_str(), f.work_orders);
    out += buf;
    for (const FusedStageStats& s : f.stages) {
      std::snprintf(buf, sizeof(buf),
                    "    stage op[%d] %s (%s): %" PRIu64 " rows in, %" PRIu64
                    " rows out\n",
                    s.op, s.name.c_str(), s.kind.c_str(), s.rows_in,
                    s.rows_out);
      out += buf;
    }
  }
  for (const ExchangeStats& x : stats_.exchanges) {
    std::snprintf(buf, sizeof(buf),
                  "  exchange op[%d] %s: radix_bits=%d, %zu partitions, "
                  "%" PRIu64 " rows, skew %.2fx\n",
                  x.op, x.name.c_str(), x.radix_bits,
                  x.partition_rows.size(), x.TotalRows(), x.SkewRatio());
    out += buf;
    for (size_t p = 0; p < x.partition_rows.size(); ++p) {
      const uint64_t blocks =
          p < x.partition_blocks.size() ? x.partition_blocks[p] : 0;
      // One consumer work order per completed block, so `blocks` is also
      // the partition's downstream work-order count.
      std::snprintf(buf, sizeof(buf),
                    "    part[%zu]: %" PRIu64 " rows, %" PRIu64
                    " blocks/work orders\n",
                    p, x.partition_rows[p], blocks);
      out += buf;
    }
  }
  out += "  memory peaks:";
  for (int c = 0; c < kNumMemoryCategories; ++c) {
    std::snprintf(buf, sizeof(buf), " %s=%s",
                  MemoryCategoryName(static_cast<MemoryCategory>(c)),
                  FormatBytes(static_cast<uint64_t>(
                      std::max<int64_t>(0, stats_.peak_bytes[c]))).c_str());
    out += buf;
  }
  out += "\n";
  std::snprintf(buf, sizeof(buf),
                "  budget: %" PRIu64 " deferrals, %" PRIu64
                " stalls, %zu events | uot: %" PRIu64
                " adaptations, %zu decisions\n",
                stats_.budget_deferrals, stats_.budget_stalls,
                stats_.budget_events.size(), stats_.uot_adaptations,
                stats_.uot_decisions.size());
  out += buf;
  for (const UotDecisionRecord& d : stats_.uot_decisions) {
    std::snprintf(buf, sizeof(buf),
                  "    t+%.3f ms edge[%d] %s -> %s (%s)\n",
                  static_cast<double>(d.t_ns - stats_.query_start_ns) / 1e6,
                  d.edge, FormatUot(d.from_blocks).c_str(),
                  FormatUot(d.to_blocks).c_str(), UotAdaptCauseName(d.cause));
    out += buf;
  }
  return out;
}

std::string QueryProfile::CalibrationReport() const {
  std::vector<const Edge*> predicted;
  for (const Edge& e : edges_) {
    if (e.has_prediction) predicted.push_back(&e);
  }
  if (predicted.empty()) return "";
  std::sort(predicted.begin(), predicted.end(),
            [](const Edge* a, const Edge* b) {
              return a->WorstRelativeError() > b->WorstRelativeError();
            });
  std::string out = "Model calibration (" + query_name_ + "), worst first:\n";
  char buf[256];
  for (const Edge* e : predicted) {
    std::snprintf(
        buf, sizeof(buf),
        "  edge[%d] op%d->op%d rel_err=%.3f: transfers %" PRIu64
        " vs %" PRIu64 " pred, bytes %" PRIu64 " vs %" PRIu64
        " est, footprint %" PRIu64 " vs %" PRIu64 " pred [%s]\n",
        e->edge, e->producer, e->consumer, e->WorstRelativeError(),
        e->transfers, e->predicted_transfers, e->bytes_delivered,
        e->est_bytes, e->max_buffered_bytes, e->predicted_footprint_bytes,
        e->reason.c_str());
    out += buf;
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\n  \"query\": ";
  {
    bool first = true;
    out += '{';
    AppendFieldS(&out, "name", query_name_, &first);
    AppendFieldU(&out, "id", stats_.query_id, &first);
    out += ", \"profiled\": ";
    out += stats_.profiled ? "true" : "false";
    AppendField(&out, "start_ns", stats_.query_start_ns, &first);
    AppendField(&out, "end_ns", stats_.query_end_ns, &first);
    AppendFieldD(&out, "duration_ms", stats_.QueryMillis(), &first);
    AppendField(&out, "admission_wait_ns", stats_.admission_wait_ns, &first);
    AppendFieldU(&out, "work_orders",
                 static_cast<uint64_t>(stats_.records.size()), &first);
    AppendFieldS(&out, "config", stats_.config_summary, &first);
    out += ", \"latency\": ";
    AppendSnapshot(&out, work_order_latency_);
    out += '}';
  }
  out += ",\n  \"operators\": [";
  for (size_t i = 0; i < operators_.size(); ++i) {
    const OperatorEntry& op = operators_[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    bool first = true;
    AppendField(&out, "op", op.op, &first);
    AppendFieldS(&out, "name", op.name, &first);
    AppendFieldU(&out, "work_orders", op.num_work_orders, &first);
    AppendField(&out, "total_task_ns", op.total_task_ns, &first);
    AppendField(&out, "first_start_ns", op.first_start_ns, &first);
    AppendField(&out, "last_end_ns", op.last_end_ns, &first);
    AppendFieldD(&out, "avg_dop", op.avg_dop, &first);
    out += ", \"latency\": ";
    AppendSnapshot(&out, op.latency);
    out += '}';
  }
  out += "\n  ],\n  \"edges\": [";
  for (size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    out += i == 0 ? "\n    {" : ",\n    {";
    bool first = true;
    AppendField(&out, "edge", e.edge, &first);
    AppendField(&out, "producer", e.producer, &first);
    AppendField(&out, "consumer", e.consumer, &first);
    AppendFieldS(&out, "producer_name", e.producer_name, &first);
    AppendFieldS(&out, "consumer_name", e.consumer_name, &first);
    // "kind" is emitted only for exchange edges: profiles of
    // exchange-free plans stay byte-identical to pre-exchange builds,
    // and the validator treats the key as optional.
    if (e.fused) {
      AppendFieldS(&out, "kind", "fused", &first);
    } else if (e.exchange) {
      AppendFieldS(&out, "kind", "exchange", &first);
    }
    AppendField(&out, "uot_blocks", JsonUot(e.final_uot_blocks), &first);
    AppendFieldU(&out, "transfers", e.transfers, &first);
    AppendFieldU(&out, "blocks_produced", e.blocks_produced, &first);
    AppendFieldU(&out, "blocks_delivered", e.blocks_delivered, &first);
    AppendFieldU(&out, "bytes_delivered", e.bytes_delivered, &first);
    AppendFieldU(&out, "max_buffered_bytes", e.max_buffered_bytes, &first);
    AppendFieldU(&out, "max_buffered_blocks", e.max_buffered_blocks, &first);
    if (e.has_prediction) {
      out += ", \"prediction\": {";
      bool pf = true;
      AppendField(&out, "uot_blocks", JsonUot(e.predicted_uot_blocks), &pf);
      AppendFieldU(&out, "est_rows", e.est_rows, &pf);
      AppendFieldU(&out, "est_bytes", e.est_bytes, &pf);
      AppendFieldU(&out, "est_blocks", e.est_blocks, &pf);
      AppendFieldU(&out, "transfers", e.predicted_transfers, &pf);
      AppendFieldU(&out, "footprint_bytes", e.predicted_footprint_bytes, &pf);
      AppendFieldD(&out, "cost_ns", e.predicted_cost_ns, &pf);
      AppendFieldS(&out, "reason", e.reason, &pf);
      out += "}, \"residuals\": {";
      bool rf = true;
      AppendField(&out, "transfers", e.residual_transfers, &rf);
      AppendField(&out, "bytes", e.residual_bytes, &rf);
      AppendField(&out, "footprint_bytes", e.residual_footprint_bytes, &rf);
      AppendFieldD(&out, "rel_err", e.WorstRelativeError(), &rf);
      out += '}';
    }
    out += '}';
  }
  out += "\n  ]";
  // Optional section (absent under vectorized execution, so pre-fusion
  // profile documents and consumers are unaffected).
  if (!stats_.fused_chains.empty()) {
    out += ",\n  \"fused_pipelines\": [";
    for (size_t i = 0; i < stats_.fused_chains.size(); ++i) {
      const FusedChainStats& f = stats_.fused_chains[i];
      out += i == 0 ? "\n    {" : ",\n    {";
      out += "\"ops\": [";
      for (size_t o = 0; o < f.ops.size(); ++o) {
        if (o > 0) out += ", ";
        out += std::to_string(f.ops[o]);
      }
      out += "]";
      bool first = false;
      AppendFieldU(&out, "work_orders", f.work_orders, &first);
      out += ", \"stages\": [";
      for (size_t s = 0; s < f.stages.size(); ++s) {
        const FusedStageStats& st = f.stages[s];
        out += s == 0 ? "\n      {" : ",\n      {";
        bool sf = true;
        AppendField(&out, "op", st.op, &sf);
        AppendFieldS(&out, "name", st.name, &sf);
        AppendFieldS(&out, "kind", st.kind, &sf);
        AppendFieldU(&out, "rows_in", st.rows_in, &sf);
        AppendFieldU(&out, "rows_out", st.rows_out, &sf);
        out += '}';
      }
      out += "]}";
    }
    out += "\n  ]";
  }
  // Optional section (absent when the plan has no exchange operators, so
  // pre-exchange profile documents and consumers are unaffected).
  if (!stats_.exchanges.empty()) {
    out += ",\n  \"exchanges\": [";
    for (size_t i = 0; i < stats_.exchanges.size(); ++i) {
      const ExchangeStats& x = stats_.exchanges[i];
      out += i == 0 ? "\n    {" : ",\n    {";
      bool first = true;
      AppendField(&out, "op", x.op, &first);
      AppendFieldS(&out, "name", x.name, &first);
      AppendField(&out, "radix_bits", x.radix_bits, &first);
      AppendFieldU(&out, "total_rows", x.TotalRows(), &first);
      AppendFieldD(&out, "skew", x.SkewRatio(), &first);
      out += ", \"partition_rows\": [";
      for (size_t p = 0; p < x.partition_rows.size(); ++p) {
        if (p > 0) out += ", ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, x.partition_rows[p]);
        out += buf;
      }
      out += "], \"partition_blocks\": [";
      for (size_t p = 0; p < x.partition_blocks.size(); ++p) {
        if (p > 0) out += ", ";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, x.partition_blocks[p]);
        out += buf;
      }
      out += "]}";
    }
    out += "\n  ]";
  }
  out += ",\n  \"memory\": {\"peak_bytes\": {";
  for (int c = 0; c < kNumMemoryCategories; ++c) {
    if (c > 0) out += ", ";
    AppendJsonString(&out,
                     MemoryCategoryName(static_cast<MemoryCategory>(c)));
    char buf[32];
    std::snprintf(buf, sizeof(buf), ": %" PRId64, stats_.peak_bytes[c]);
    out += buf;
  }
  out += "}},\n  \"budget\": {";
  {
    bool first = true;
    AppendFieldU(&out, "deferrals", stats_.budget_deferrals, &first);
    AppendFieldU(&out, "stalls", stats_.budget_stalls, &first);
    out += ", \"events\": [";
    for (size_t i = 0; i < stats_.budget_events.size(); ++i) {
      const BudgetEventRecord& ev = stats_.budget_events[i];
      out += i == 0 ? "\n      {" : ",\n      {";
      bool ef = true;
      AppendField(&out, "t_ns", ev.t_ns, &ef);
      AppendField(&out, "op", ev.op, &ef);
      AppendFieldS(&out, "kind", ev.release ? "release" : "defer", &ef);
      AppendField(&out, "tracked_bytes", ev.tracked_bytes, &ef);
      out += '}';
    }
    out += "]";
  }
  out += "},\n  \"uot\": {";
  {
    bool first = true;
    AppendFieldU(&out, "adaptations", stats_.uot_adaptations, &first);
    out += ", \"decisions\": [";
    for (size_t i = 0; i < stats_.uot_decisions.size(); ++i) {
      const UotDecisionRecord& d = stats_.uot_decisions[i];
      out += i == 0 ? "\n      {" : ",\n      {";
      bool df = true;
      AppendField(&out, "t_ns", d.t_ns, &df);
      AppendField(&out, "edge", d.edge, &df);
      AppendField(&out, "from_blocks", JsonUot(d.from_blocks), &df);
      AppendField(&out, "to_blocks", JsonUot(d.to_blocks), &df);
      AppendFieldS(&out, "cause", UotAdaptCauseName(d.cause), &df);
      out += '}';
    }
    out += "]";
  }
  out += "}\n}\n";
  return out;
}

Status QueryProfile::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open profile output: " + path);
  }
  out << ToJson();
  out.flush();
  if (!out.good()) {
    return Status::Internal("short write to profile output: " + path);
  }
  return Status::OK();
}

void QueryProfile::ExportResidualMetrics(MetricsRegistry* registry,
                                         const std::string& prefix) const {
  UOT_CHECK(registry != nullptr);
  for (const Edge& e : edges_) {
    if (!e.has_prediction) continue;
    const std::string base =
        prefix + "model.residual.edge." + std::to_string(e.edge);
    registry->GetGauge(base + ".transfers")->Set(e.residual_transfers);
    registry->GetGauge(base + ".bytes")->Set(e.residual_bytes);
    registry->GetGauge(base + ".footprint_bytes")
        ->Set(e.residual_footprint_bytes);
  }
}

namespace {

Status ProfileError(const std::string& what) {
  return Status::InvalidArgument("query profile JSON: " + what);
}

Status RequireNumber(const JsonValue& object, const char* key,
                     const char* where) {
  const JsonValue* v = object.Find(key);
  if (v == nullptr || !v->is_number()) {
    return ProfileError(std::string("missing numeric \"") + key + "\" in " +
                        where);
  }
  return Status::OK();
}

Status ValidateSnapshot(const JsonValue& object, const char* where) {
  for (const char* key : {"count", "sum", "min", "max", "p50", "p95", "p99"}) {
    UOT_RETURN_IF_ERROR(RequireNumber(object, key, where));
  }
  return Status::OK();
}

}  // namespace

Status ParseQueryProfileJson(std::string_view json,
                             QueryProfileSummary* summary) {
  UOT_CHECK(summary != nullptr);
  *summary = QueryProfileSummary();
  JsonValue root;
  UOT_RETURN_IF_ERROR(JsonValue::Parse(json, &root));
  if (!root.is_object()) return ProfileError("top level is not an object");

  const JsonValue* query = root.Find("query");
  if (query == nullptr || !query->is_object()) {
    return ProfileError("missing \"query\" object");
  }
  const JsonValue* name = query->Find("name");
  if (name == nullptr || !name->is_string()) {
    return ProfileError("missing \"query.name\" string");
  }
  summary->query_name = name->AsString();
  UOT_RETURN_IF_ERROR(RequireNumber(*query, "id", "query"));
  summary->query_id = static_cast<uint64_t>(query->NumberOr("id", 0));
  for (const char* key :
       {"start_ns", "end_ns", "duration_ms", "admission_wait_ns",
        "work_orders"}) {
    UOT_RETURN_IF_ERROR(RequireNumber(*query, key, "query"));
  }
  const JsonValue* profiled = query->Find("profiled");
  if (profiled == nullptr || !profiled->is_bool()) {
    return ProfileError("missing \"query.profiled\" bool");
  }
  summary->profiled = profiled->AsBool();
  const JsonValue* query_latency = query->Find("latency");
  if (query_latency == nullptr || !query_latency->is_object()) {
    return ProfileError("missing \"query.latency\" object");
  }
  UOT_RETURN_IF_ERROR(ValidateSnapshot(*query_latency, "query.latency"));

  const JsonValue* operators = root.Find("operators");
  if (operators == nullptr || !operators->is_array()) {
    return ProfileError("missing \"operators\" array");
  }
  for (const JsonValue& op : operators->AsArray()) {
    if (!op.is_object()) return ProfileError("operator entry is not an object");
    UOT_RETURN_IF_ERROR(RequireNumber(op, "op", "operator"));
    UOT_RETURN_IF_ERROR(RequireNumber(op, "work_orders", "operator"));
    const JsonValue* op_name = op.Find("name");
    if (op_name == nullptr || !op_name->is_string()) {
      return ProfileError("operator entry missing \"name\"");
    }
    const JsonValue* latency = op.Find("latency");
    if (latency == nullptr || !latency->is_object()) {
      return ProfileError("operator entry missing \"latency\"");
    }
    UOT_RETURN_IF_ERROR(ValidateSnapshot(*latency, "operator.latency"));
  }
  summary->num_operators = operators->AsArray().size();

  const JsonValue* edges = root.Find("edges");
  if (edges == nullptr || !edges->is_array()) {
    return ProfileError("missing \"edges\" array");
  }
  for (const JsonValue& edge : edges->AsArray()) {
    if (!edge.is_object()) return ProfileError("edge entry is not an object");
    for (const char* key :
         {"edge", "producer", "consumer", "uot_blocks", "transfers",
          "blocks_produced", "blocks_delivered", "bytes_delivered",
          "max_buffered_bytes"}) {
      UOT_RETURN_IF_ERROR(RequireNumber(edge, key, "edge"));
    }
    // Optional edge kind tag (absent in pre-exchange documents, which
    // therefore keep validating; present = "exchange"|"pipeline"|"fused").
    const JsonValue* kind = edge.Find("kind");
    if (kind != nullptr) {
      if (!kind->is_string() || (kind->AsString() != "exchange" &&
                                 kind->AsString() != "pipeline" &&
                                 kind->AsString() != "fused")) {
        return ProfileError("edge \"kind\" must be exchange|pipeline|fused");
      }
      if (kind->AsString() == "exchange") ++summary->num_exchange_edges;
      if (kind->AsString() == "fused") ++summary->num_fused_edges;
    }
    const JsonValue* prediction = edge.Find("prediction");
    const JsonValue* residuals = edge.Find("residuals");
    if ((prediction == nullptr) != (residuals == nullptr)) {
      return ProfileError("edge has prediction without residuals (or vice versa)");
    }
    if (prediction != nullptr) {
      if (!prediction->is_object() || !residuals->is_object()) {
        return ProfileError("edge prediction/residuals are not objects");
      }
      for (const char* key :
           {"uot_blocks", "est_rows", "est_bytes", "est_blocks", "transfers",
            "footprint_bytes", "cost_ns"}) {
        UOT_RETURN_IF_ERROR(RequireNumber(*prediction, key, "prediction"));
      }
      for (const char* key : {"transfers", "bytes", "footprint_bytes"}) {
        UOT_RETURN_IF_ERROR(RequireNumber(*residuals, key, "residuals"));
      }
      ++summary->num_predicted_edges;
    }
  }
  summary->num_edges = edges->AsArray().size();

  // Optional "fused_pipelines" section: per-chain stage row flow. Absent
  // in pre-fusion documents and vectorized runs; validated when present.
  const JsonValue* fused = root.Find("fused_pipelines");
  if (fused != nullptr) {
    if (!fused->is_array()) {
      return ProfileError("\"fused_pipelines\" is not an array");
    }
    for (const JsonValue& f : fused->AsArray()) {
      if (!f.is_object()) {
        return ProfileError("fused pipeline entry is not an object");
      }
      UOT_RETURN_IF_ERROR(RequireNumber(f, "work_orders", "fused pipeline"));
      const JsonValue* ops = f.Find("ops");
      if (ops == nullptr || !ops->is_array()) {
        return ProfileError("fused pipeline entry missing \"ops\" array");
      }
      for (const JsonValue& v : ops->AsArray()) {
        if (!v.is_number()) {
          return ProfileError("fused pipeline \"ops\" holds a non-number");
        }
      }
      const JsonValue* stages = f.Find("stages");
      if (stages == nullptr || !stages->is_array()) {
        return ProfileError("fused pipeline entry missing \"stages\" array");
      }
      for (const JsonValue& s : stages->AsArray()) {
        if (!s.is_object()) {
          return ProfileError("fused stage entry is not an object");
        }
        for (const char* key : {"op", "rows_in", "rows_out"}) {
          UOT_RETURN_IF_ERROR(RequireNumber(s, key, "fused stage"));
        }
        const JsonValue* stage_kind = s.Find("kind");
        if (stage_kind == nullptr || !stage_kind->is_string()) {
          return ProfileError("fused stage entry missing \"kind\"");
        }
      }
    }
    summary->num_fused_chains = fused->AsArray().size();
  }

  // Optional "exchanges" section: per-operator partition histograms.
  // Absent in pre-exchange documents; validated when present.
  const JsonValue* exchanges = root.Find("exchanges");
  if (exchanges != nullptr) {
    if (!exchanges->is_array()) {
      return ProfileError("\"exchanges\" is not an array");
    }
    for (const JsonValue& x : exchanges->AsArray()) {
      if (!x.is_object()) {
        return ProfileError("exchange entry is not an object");
      }
      for (const char* key : {"op", "radix_bits", "total_rows"}) {
        UOT_RETURN_IF_ERROR(RequireNumber(x, key, "exchange"));
      }
      for (const char* key : {"partition_rows", "partition_blocks"}) {
        const JsonValue* arr = x.Find(key);
        if (arr == nullptr || !arr->is_array()) {
          return ProfileError(std::string("exchange entry missing \"") + key +
                              "\" array");
        }
        for (const JsonValue& v : arr->AsArray()) {
          if (!v.is_number()) {
            return ProfileError(std::string("exchange \"") + key +
                                "\" holds a non-number");
          }
        }
      }
    }
    summary->num_exchanges = exchanges->AsArray().size();
  }

  const JsonValue* memory = root.Find("memory");
  if (memory == nullptr || !memory->is_object() ||
      memory->Find("peak_bytes") == nullptr ||
      !memory->Find("peak_bytes")->is_object()) {
    return ProfileError("missing \"memory.peak_bytes\" object");
  }

  const JsonValue* budget = root.Find("budget");
  if (budget == nullptr || !budget->is_object()) {
    return ProfileError("missing \"budget\" object");
  }
  UOT_RETURN_IF_ERROR(RequireNumber(*budget, "deferrals", "budget"));
  UOT_RETURN_IF_ERROR(RequireNumber(*budget, "stalls", "budget"));
  const JsonValue* events = budget->Find("events");
  if (events == nullptr || !events->is_array()) {
    return ProfileError("missing \"budget.events\" array");
  }
  for (const JsonValue& ev : events->AsArray()) {
    if (!ev.is_object()) return ProfileError("budget event is not an object");
    UOT_RETURN_IF_ERROR(RequireNumber(ev, "t_ns", "budget event"));
    const JsonValue* kind = ev.Find("kind");
    if (kind == nullptr || !kind->is_string() ||
        (kind->AsString() != "defer" && kind->AsString() != "release")) {
      return ProfileError("budget event \"kind\" must be defer|release");
    }
  }
  summary->num_budget_events = events->AsArray().size();

  const JsonValue* uot = root.Find("uot");
  if (uot == nullptr || !uot->is_object()) {
    return ProfileError("missing \"uot\" object");
  }
  UOT_RETURN_IF_ERROR(RequireNumber(*uot, "adaptations", "uot"));
  const JsonValue* decisions = uot->Find("decisions");
  if (decisions == nullptr || !decisions->is_array()) {
    return ProfileError("missing \"uot.decisions\" array");
  }
  int64_t last_t = INT64_MIN;
  for (const JsonValue& d : decisions->AsArray()) {
    if (!d.is_object()) return ProfileError("uot decision is not an object");
    for (const char* key : {"t_ns", "edge", "from_blocks", "to_blocks"}) {
      UOT_RETURN_IF_ERROR(RequireNumber(d, key, "uot decision"));
    }
    const JsonValue* cause = d.Find("cause");
    if (cause == nullptr || !cause->is_string()) {
      return ProfileError("uot decision missing \"cause\"");
    }
    const int64_t t = d.Find("t_ns")->AsInt64();
    if (t < last_t) {
      return ProfileError("uot decisions are not in time order");
    }
    last_t = t;
  }
  summary->num_uot_decisions = decisions->AsArray().size();

  return Status::OK();
}

}  // namespace obs
}  // namespace uot
