#include "obs/trace_session.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "scheduler/uot_policy.h"
#include "util/timer.h"

namespace uot {
namespace obs {

namespace {

std::atomic<uint64_t> g_next_session_id{1};

/// Counter-track names for TraceEventType::kMemoryBytes, indexed by
/// MemoryCategory (util/memory_tracker.h).
const char* MemoryCategoryTrackName(int32_t category) {
  switch (category) {
    case 0: return "memory.base_table";
    case 1: return "memory.temporary_table";
    case 2: return "memory.hash_table";
    case 3: return "memory.other";
    default: return "memory.unknown";
  }
}

}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kQuery: return "query";
    case TraceEventType::kWorkOrder: return "work_order";
    case TraceEventType::kBlockTransfer: return "block_transfer";
    case TraceEventType::kEdgeFlush: return "edge_flush";
    case TraceEventType::kBudgetDefer: return "budget_defer";
    case TraceEventType::kBudgetRelease: return "budget_release";
    case TraceEventType::kHashTableReserve: return "hash_table_reserve";
    case TraceEventType::kOperatorFinish: return "operator_finish";
    case TraceEventType::kQueueDepth: return "queue_depth";
    case TraceEventType::kMemoryBytes: return "memory_bytes";
    case TraceEventType::kJoinBatchStage: return "join_batch_stage";
    case TraceEventType::kUotEffective: return "uot_effective";
    case TraceEventType::kUotAdapt: return "uot_adapt";
    case TraceEventType::kUotDecision: return "uot_decision";
  }
  return "unknown";
}

const char* JoinBatchStageName(int32_t stage) {
  switch (static_cast<JoinBatchStage>(stage)) {
    case JoinBatchStage::kExtract: return "extract";
    case JoinBatchStage::kProbe: return "probe";
    case JoinBatchStage::kResidual: return "residual";
    case JoinBatchStage::kEmit: return "emit";
    case JoinBatchStage::kInsert: return "insert";
    case JoinBatchStage::kPartition: return "partition";
    case JoinBatchStage::kScatter: return "scatter";
  }
  return "unknown";
}

const char* TraceEventTypeCategory(TraceEventType type) {
  switch (type) {
    case TraceEventType::kQuery: return "exec";
    case TraceEventType::kWorkOrder: return "scheduler";
    case TraceEventType::kBlockTransfer:
    case TraceEventType::kEdgeFlush:
    case TraceEventType::kUotEffective:
    case TraceEventType::kUotAdapt:
    case TraceEventType::kUotDecision: return "transfer";
    case TraceEventType::kBudgetDefer:
    case TraceEventType::kBudgetRelease:
    case TraceEventType::kMemoryBytes: return "memory";
    case TraceEventType::kHashTableReserve:
    case TraceEventType::kJoinBatchStage: return "join";
    case TraceEventType::kOperatorFinish: return "scheduler";
    case TraceEventType::kQueueDepth: return "scheduler";
  }
  return "unknown";
}

/// A fixed-capacity run of events; chunks chain so appends never relocate.
struct TraceSession::Chunk {
  static constexpr size_t kChunkEvents = 2048;
  size_t count = 0;
  std::unique_ptr<Chunk> next;
  TraceEvent events[kChunkEvents];
};

/// One thread's event log. Only the owning thread appends; readers walk
/// the chunks after the writer has quiesced.
struct TraceSession::ThreadBuffer {
  std::unique_ptr<Chunk> head;
  Chunk* tail = nullptr;

  void Append(const TraceEvent& event) {
    if (tail == nullptr || tail->count == Chunk::kChunkEvents) {
      auto chunk = std::make_unique<Chunk>();
      Chunk* raw = chunk.get();
      if (tail == nullptr) {
        head = std::move(chunk);
      } else {
        tail->next = std::move(chunk);
      }
      tail = raw;
    }
    tail->events[tail->count++] = event;
  }

  size_t size() const {
    size_t n = 0;
    for (const Chunk* c = head.get(); c != nullptr; c = c->next.get()) {
      n += c->count;
    }
    return n;
  }
};

TraceSession::TraceSession()
    : session_id_(g_next_session_id.fetch_add(1, std::memory_order_relaxed)),
      origin_ns_(NowNanos()) {}

TraceSession::~TraceSession() = default;

TraceSession::ThreadBuffer* TraceSession::LocalBuffer() {
  // One-entry cache: the common case (a thread emitting repeatedly into the
  // same session) is a single comparison. Session ids are globally unique,
  // so a stale entry from a destroyed session can never match.
  struct Cache {
    uint64_t session_id = 0;
    ThreadBuffer* buffer = nullptr;
  };
  thread_local Cache cache;
  if (cache.session_id == session_id_) return cache.buffer;

  std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id tid = std::this_thread::get_id();
  ThreadBuffer*& slot = buffer_by_thread_[tid];
  if (slot == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    slot = owned.get();
    buffers_.push_back(std::move(owned));
  }
  cache = Cache{session_id_, slot};
  return slot;
}

void TraceSession::Emit(const TraceEvent& event) {
  LocalBuffer()->Append(event);
}

void TraceSession::EmitComplete(TraceEventType type, uint32_t tid,
                                int64_t start_ns, int64_t end_ns,
                                int32_t arg0, int32_t arg1, int64_t value) {
  TraceEvent e;
  e.type = type;
  e.phase = TracePhase::kComplete;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns - start_ns;
  e.tid = tid;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.value = value;
  Emit(e);
}

void TraceSession::EmitInstant(TraceEventType type, uint32_t tid,
                               int32_t arg0, int32_t arg1, int64_t value) {
  TraceEvent e;
  e.type = type;
  e.phase = TracePhase::kInstant;
  e.ts_ns = NowNanos();
  e.tid = tid;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.value = value;
  Emit(e);
}

void TraceSession::EmitCounter(TraceEventType type, int32_t arg0,
                               int64_t value) {
  TraceEvent e;
  e.type = type;
  e.phase = TracePhase::kCounter;
  e.ts_ns = NowNanos();
  e.arg0 = arg0;
  e.value = value;
  Emit(e);
}

void TraceSession::SetOperatorNames(std::vector<std::string> names) {
  std::lock_guard<std::mutex> lock(mutex_);
  op_names_ = std::move(names);
}

void TraceSession::SetThreadName(uint32_t tid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[tid] = std::move(name);
}

size_t TraceSession::num_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& buffer : buffers_) n += buffer->size();
  return n;
}

std::vector<TraceEvent> TraceSession::SortedEvents() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      for (const Chunk* c = buffer->head.get(); c != nullptr;
           c = c->next.get()) {
        events.insert(events.end(), c->events, c->events + c->count);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

namespace {

/// Appends one JSON string literal (names never need escaping beyond
/// quotes/backslashes, but operator names can contain parentheses etc.).
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void AppendKeyValue(std::string* out, const char* key, int64_t value,
                    bool* first) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRId64, *first ? "" : ",",
                key, value);
  *out += buf;
  *first = false;
}

}  // namespace

void TraceSession::ExportChromeJson(std::ostream& os) const {
  const std::vector<TraceEvent> events = SortedEvents();
  std::vector<std::string> op_names;
  std::map<uint32_t, std::string> thread_names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    op_names = op_names_;
    thread_names = thread_names_;
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_event = true;
  char buf[160];

  for (const auto& [tid, name] : thread_names) {
    std::string line;
    if (!first_event) line += ",";
    line += "\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%u", tid);
    line += buf;
    line += ",\"args\":{\"name\":";
    AppendJsonString(&line, name);
    line += "}}";
    os << line;
    first_event = false;
  }

  for (const TraceEvent& e : events) {
    std::string line;
    if (!first_event) line += ",";
    first_event = false;
    line += "\n{\"name\":";
    // Counter tracks get distinguishing names so Perfetto draws one track
    // per category/queue instead of merging them.
    if (e.type == TraceEventType::kMemoryBytes) {
      AppendJsonString(&line, MemoryCategoryTrackName(e.arg0));
    } else if (e.type == TraceEventType::kQueueDepth) {
      AppendJsonString(&line, e.arg0 == 0 ? std::string("queue.work_orders")
                                          : std::string("queue.events"));
    } else if (e.type == TraceEventType::kUotEffective) {
      // One counter track per edge ("uot.edge0.effective_blocks", ...) so
      // Perfetto plots each edge's UoT trajectory separately.
      AppendJsonString(&line, "uot.edge" + std::to_string(e.arg0) +
                                  ".effective_blocks");
    } else if (e.type == TraceEventType::kJoinBatchStage) {
      // Per-stage span names ("join.probe") so the trace viewer colors the
      // extract/probe/residual/emit/insert stages distinctly.
      AppendJsonString(&line,
                       std::string("join.") + JoinBatchStageName(e.arg1));
    } else {
      AppendJsonString(&line, TraceEventTypeName(e.type));
    }
    line += ",\"cat\":";
    AppendJsonString(&line, TraceEventTypeCategory(e.type));
    const double ts_us =
        static_cast<double>(e.ts_ns - origin_ns_) / 1000.0;
    switch (e.phase) {
      case TracePhase::kComplete:
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,"
                      "\"tid\":%u",
                      ts_us, static_cast<double>(e.dur_ns) / 1000.0, e.tid);
        break;
      case TracePhase::kInstant:
        std::snprintf(buf, sizeof(buf),
                      ",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,"
                      "\"tid\":%u",
                      ts_us, e.tid);
        break;
      case TracePhase::kCounter:
        std::snprintf(buf, sizeof(buf), ",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0",
                      ts_us);
        break;
    }
    line += buf;
    line += ",\"args\":{";
    bool first_arg = true;
    switch (e.type) {
      case TraceEventType::kQuery:
        AppendKeyValue(&line, "work_orders", e.value, &first_arg);
        break;
      case TraceEventType::kWorkOrder:
        AppendKeyValue(&line, "op", e.arg0, &first_arg);
        if (e.arg0 >= 0 &&
            static_cast<size_t>(e.arg0) < op_names.size()) {
          line += ",\"op_name\":";
          AppendJsonString(&line, op_names[static_cast<size_t>(e.arg0)]);
        }
        AppendKeyValue(&line, "worker", e.arg1, &first_arg);
        break;
      case TraceEventType::kBlockTransfer:
        AppendKeyValue(&line, "edge", e.arg0, &first_arg);
        AppendKeyValue(&line, "blocks", e.value, &first_arg);
        break;
      case TraceEventType::kEdgeFlush:
        AppendKeyValue(&line, "edge", e.arg0, &first_arg);
        break;
      case TraceEventType::kBudgetDefer:
      case TraceEventType::kBudgetRelease:
        AppendKeyValue(&line, "op", e.arg0, &first_arg);
        AppendKeyValue(&line, "tracked_bytes", e.value, &first_arg);
        break;
      case TraceEventType::kHashTableReserve:
        AppendKeyValue(&line, "slots", e.arg1, &first_arg);
        AppendKeyValue(&line, "bytes", e.value, &first_arg);
        break;
      case TraceEventType::kOperatorFinish:
        AppendKeyValue(&line, "op", e.arg0, &first_arg);
        if (e.arg0 >= 0 &&
            static_cast<size_t>(e.arg0) < op_names.size()) {
          line += ",\"op_name\":";
          AppendJsonString(&line, op_names[static_cast<size_t>(e.arg0)]);
        }
        break;
      case TraceEventType::kQueueDepth:
        AppendKeyValue(&line, "depth", e.value, &first_arg);
        break;
      case TraceEventType::kMemoryBytes:
        AppendKeyValue(&line, "bytes", e.value, &first_arg);
        break;
      case TraceEventType::kUotEffective:
        AppendKeyValue(&line, "blocks", e.value, &first_arg);
        break;
      case TraceEventType::kUotAdapt:
        AppendKeyValue(&line, "edge", e.arg0, &first_arg);
        AppendKeyValue(&line, "from_blocks", e.arg1, &first_arg);
        AppendKeyValue(&line, "to_blocks", e.value, &first_arg);
        break;
      case TraceEventType::kUotDecision:
        AppendKeyValue(&line, "edge", e.arg0, &first_arg);
        line += ",\"cause\":";
        AppendJsonString(&line,
                         UotAdaptCauseName(static_cast<UotAdaptCause>(e.arg1)));
        AppendKeyValue(&line, "blocks", e.value, &first_arg);
        break;
      case TraceEventType::kJoinBatchStage:
        AppendKeyValue(&line, "op", e.arg0, &first_arg);
        if (e.arg0 >= 0 &&
            static_cast<size_t>(e.arg0) < op_names.size()) {
          line += ",\"op_name\":";
          AppendJsonString(&line, op_names[static_cast<size_t>(e.arg0)]);
        }
        line += ",\"stage\":";
        AppendJsonString(&line, JoinBatchStageName(e.arg1));
        AppendKeyValue(&line, "rows", e.value, &first_arg);
        break;
    }
    line += "}}";
    os << line;
  }
  os << "\n]}\n";
}

std::string TraceSession::ToChromeJson() const {
  std::ostringstream os;
  ExportChromeJson(os);
  return os.str();
}

Status TraceSession::WriteChromeJson(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open trace output: " + path);
  }
  ExportChromeJson(out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace uot
