#ifndef UOT_OBS_TRACE_JSON_H_
#define UOT_OBS_TRACE_JSON_H_

#include <cstddef>
#include <string_view>

#include "util/status.h"

namespace uot {
namespace obs {

/// What a structural parse of a Chrome/Perfetto trace_event JSON file
/// found. Metadata events ("ph":"M") are counted separately and excluded
/// from the timestamp checks (they carry no "ts").
struct ChromeTraceSummary {
  size_t num_events = 0;  // all entries of "traceEvents"
  size_t num_complete = 0;
  size_t num_instant = 0;
  size_t num_counter = 0;
  size_t num_metadata = 0;
  /// True when the "ts" fields of timestamped events are non-decreasing
  /// in file order (the exporter sorts, so round-trips must preserve it).
  bool timestamps_monotonic = true;
  double first_ts_us = 0.0;
  double last_ts_us = 0.0;
};

/// Validates that `json` is a syntactically well-formed JSON document whose
/// top level is an object with a "traceEvents" array of event objects, and
/// fills `summary`. This is a full structural JSON parse (objects, arrays,
/// strings with escapes, numbers, literals), not a substring scan — used by
/// tests to prove exported traces are loadable.
Status ParseChromeTraceJson(std::string_view json,
                            ChromeTraceSummary* summary);

}  // namespace obs
}  // namespace uot

#endif  // UOT_OBS_TRACE_JSON_H_
