#ifndef UOT_PLAN_PLAN_BUILDER_H_
#define UOT_PLAN_PLAN_BUILDER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "operators/aggregate_operator.h"
#include "operators/build_hash_operator.h"
#include "operators/exchange_operator.h"
#include "operators/probe_hash_operator.h"
#include "operators/select_operator.h"
#include "operators/sort_operator.h"
#include "plan/query_plan.h"

namespace uot {

/// Plan-construction knobs shared by all benchmark plan builders.
struct PlanBuilderConfig {
  /// Block size of temporary (intermediate) tables.
  size_t block_bytes = 1 << 20;
  /// Join hash-table load factor (the model's `f`).
  double load_factor = 0.75;
  /// Temporary tables use the row-store format irrespective of the base
  /// tables (paper Section IV-B).
  Layout temp_layout = Layout::kRowStore;
  /// Attach LIP Bloom filters (Zhu et al. [42]) from selective hash-table
  /// builds to probe-side selections — the paper's selectivity-lowering
  /// technique (Section VI-C). Results are unchanged; intermediates
  /// shrink.
  bool use_lip = false;
  /// Radix-partition every hash join: when > 0, Build() and Probe() wrap
  /// their inputs in an ExchangeOperator keyed on the join keys, splitting
  /// each join into 2^join_radix_bits independent partition sub-joins
  /// (ROADMAP item 2). 0 (the default) keeps the single shared-table
  /// shape. Results are byte-identical either way.
  int join_radix_bits = 0;
};

/// Wires operators, temp tables, destinations and edges so per-query plan
/// builders read like logical plans. Used by the TPC-H and SSB substrates
/// and usable for ad-hoc plans in examples/tests.
class PlanBuilder {
 public:
  PlanBuilder(StorageManager* storage, const PlanBuilderConfig& config)
      : storage_(storage),
        config_(config),
        plan_(std::make_unique<QueryPlan>(storage)) {}

  /// A data source: a base table (op < 0) or an operator's output stream.
  struct Src {
    int op = -1;
    const Table* table = nullptr;
    Table* temp = nullptr;  // non-null for operator outputs
  };

  static Src Base(const Table& table) { return Src{-1, &table, nullptr}; }

  const Schema& SchemaOf(const Src& src) const { return src.table->schema(); }

  /// `lip` lists (build op, input column) pairs whose Bloom filters prune
  /// this selection (only applied when the config enables LIP).
  Src Select(const std::string& name, const Src& in,
             std::unique_ptr<Predicate> pred,
             std::unique_ptr<Projection> proj,
             std::vector<std::pair<BuildHashOperator*, int>> lip = {}) {
    Table* out =
        plan_->CreateTempTable(name + ".out", proj->output_schema(),
                               config_.temp_layout, config_.block_bytes);
    InsertDestination* dest = plan_->CreateDestination(out);
    auto op = std::make_unique<SelectOperator>(name, std::move(pred),
                                               std::move(proj), dest);
    SelectOperator* raw = op.get();
    const int idx = plan_->AddOperator(std::move(op));
    plan_->RegisterOutput(idx, dest);
    Attach(in, idx, [raw](const Table* t) { raw->AttachBaseTable(t); });
    if (config_.use_lip) {
      for (const auto& [build, col] : lip) {
        build->EnableLipFilter();
        raw->AddLipFilter(build, col);
        plan_->AddBlockingEdge(build_index_.at(build), idx);
      }
    }
    return Src{idx, out, out};
  }

  /// Hash-repartitions `in` into 2^radix_bits partitions keyed on
  /// `key_cols` — the explicit exchange/repartition edge. The returned Src
  /// carries the same schema (rows pass through unchanged, tagged by
  /// partition); feeding it to Build/Probe keyed on the same columns makes
  /// the join run per partition.
  Src Exchange(const std::string& name, const Src& in,
               std::vector<int> key_cols, int radix_bits) {
    Table* out = plan_->CreateTempTable(name + ".out", SchemaOf(in),
                                        config_.temp_layout,
                                        config_.block_bytes);
    const uint32_t parts = NumPartitions(radix_bits);
    std::vector<InsertDestination*> dests;
    dests.reserve(parts);
    for (uint32_t p = 0; p < parts; ++p) {
      InsertDestination* d = plan_->CreateDestination(out);
      d->set_partition(static_cast<int32_t>(p));
      dests.push_back(d);
    }
    auto op = std::make_unique<ExchangeOperator>(name, std::move(key_cols),
                                                 radix_bits, dests);
    ExchangeOperator* raw = op.get();
    const int idx = plan_->AddOperator(std::move(op));
    for (InsertDestination* d : dests) plan_->RegisterOutput(idx, d);
    Attach(in, idx, [raw](const Table* t) { raw->AttachBaseTable(t); });
    return Src{idx, out, out};
  }

  /// Returns the build operator (probe operators reference it).
  /// `radix_bits` -1 defers to config_.join_radix_bits; > 0 wraps the
  /// input in an Exchange keyed on `key_cols` (unless `in` already is an
  /// exchange, whose radix then wins) and builds per-partition sub-tables.
  BuildHashOperator* Build(const std::string& name, const Src& in,
                           std::vector<int> key_cols,
                           std::vector<int> payload_cols,
                           int radix_bits = -1) {
    if (radix_bits < 0) radix_bits = config_.join_radix_bits;
    Src input = in;
    if (IsExchange(in.op)) {
      radix_bits = ExchangeRadixBits(in.op);
    } else if (radix_bits > 0) {
      input = Exchange(name + ".xchg", in, key_cols, radix_bits);
    }
    auto op = std::make_unique<BuildHashOperator>(
        name, std::move(key_cols), std::move(payload_cols),
        config_.load_factor, &storage_->tracker(), radix_bits);
    BuildHashOperator* raw = op.get();
    raw->InitHashTable(SchemaOf(input));
    const int idx = plan_->AddOperator(std::move(op));
    build_index_[raw] = idx;
    Attach(input, idx, [raw](const Table* t) { raw->AttachBaseTable(t); });
    return raw;
  }

  Src Probe(const std::string& name, const Src& in, BuildHashOperator* build,
            std::vector<int> key_cols, std::vector<int> out_cols,
            JoinKind kind = JoinKind::kInner,
            std::vector<ResidualCondition> residuals = {}) {
    // A partitioned build needs a matching partitioned probe input: wrap
    // it in an exchange keyed on the probe keys at the build's radix (the
    // same hash routes matching keys of both sides to the same partition).
    Src input = in;
    if (build->radix_bits() > 0 && !IsExchange(in.op)) {
      input = Exchange(name + ".xchg", in, key_cols, build->radix_bits());
    }
    std::vector<int> payload_cols;
    const Schema& payload = build->hash_table()->payload_schema();
    for (int c = 0; c < payload.num_columns(); ++c) payload_cols.push_back(c);
    Schema out_schema = ProbeHashOperator::OutputSchema(
        SchemaOf(input), out_cols, payload, payload_cols, kind);
    Table* out =
        plan_->CreateTempTable(name + ".out", std::move(out_schema),
                               config_.temp_layout, config_.block_bytes);
    InsertDestination* dest = plan_->CreateDestination(out);
    auto op = std::make_unique<ProbeHashOperator>(
        name, build, std::move(key_cols), std::move(out_cols), kind,
        std::move(residuals), dest);
    ProbeHashOperator* raw = op.get();
    const int idx = plan_->AddOperator(std::move(op));
    plan_->RegisterOutput(idx, dest);
    plan_->AddBlockingEdge(build_index_.at(build), idx);
    Attach(input, idx, [raw](const Table* t) { raw->AttachBaseTable(t); });
    return Src{idx, out, out};
  }

  Src Aggregate(const std::string& name, const Src& in,
                std::vector<int> group_cols, std::vector<AggSpec> aggs,
                std::unique_ptr<Predicate> pred = nullptr) {
    Schema out_schema =
        AggregateOperator::OutputSchema(SchemaOf(in), group_cols, aggs);
    Table* out =
        plan_->CreateTempTable(name + ".out", std::move(out_schema),
                               config_.temp_layout, config_.block_bytes);
    InsertDestination* dest = plan_->CreateDestination(out);
    auto op = std::make_unique<AggregateOperator>(
        name, SchemaOf(in), std::move(group_cols), std::move(aggs),
        std::move(pred), dest);
    AggregateOperator* raw = op.get();
    const int idx = plan_->AddOperator(std::move(op));
    plan_->RegisterOutput(idx, dest);
    Attach(in, idx, [raw](const Table* t) { raw->AttachBaseTable(t); });
    return Src{idx, out, out};
  }

  Src Sort(const std::string& name, const Src& in, std::vector<SortKey> keys,
           uint64_t limit = 0) {
    Table* out = plan_->CreateTempTable("sort.out", SchemaOf(in),
                                        config_.temp_layout,
                                        config_.block_bytes);
    InsertDestination* dest = plan_->CreateDestination(out);
    auto op = std::make_unique<SortOperator>(name, SchemaOf(in),
                                             std::move(keys), dest, limit);
    SortOperator* raw = op.get();
    const int idx = plan_->AddOperator(std::move(op));
    plan_->RegisterOutput(idx, dest);
    Attach(in, idx, [raw](const Table* t) { raw->AttachBaseTable(t); });
    return Src{idx, out, out};
  }

  /// Pins the streaming edge `producer` -> `consumer` (wired earlier by a
  /// Select/Probe/Aggregate/Sort call whose input was `producer`) to a
  /// fixed UoT, overriding the session's policy for that edge.
  PlanBuilder& AnnotateEdgeUot(const Src& producer, const Src& consumer,
                               UotPolicy uot) {
    const int edge = plan_->FindStreamingEdge(producer.op, consumer.op);
    UOT_CHECK(edge >= 0);  // no streaming edge between these operators
    plan_->AnnotateEdgeUot(edge, uot);
    return *this;
  }

  /// Same, for an edge feeding a hash-table build operator.
  PlanBuilder& AnnotateEdgeUot(const Src& producer,
                               const BuildHashOperator* build, UotPolicy uot) {
    const int edge =
        plan_->FindStreamingEdge(producer.op, build_index_.at(build));
    UOT_CHECK(edge >= 0);  // no streaming edge between these operators
    plan_->AnnotateEdgeUot(edge, uot);
    return *this;
  }

  /// Annotates the linear chain of operators `stages` (in pipeline order,
  /// each the streaming input of the next) as one fused pipeline. The
  /// fused::PipelineFuser pass detects such chains automatically at
  /// session start; this helper is for builders/tests that want the
  /// annotation explicit (it shows in QueryPlan::ToString).
  PlanBuilder& AnnotateFusedPipeline(const std::vector<Src>& stages) {
    std::vector<int> ops;
    ops.reserve(stages.size());
    for (const Src& s : stages) {
      UOT_CHECK(s.op >= 0);  // base tables are inputs, not stages
      ops.push_back(s.op);
    }
    plan_->AnnotateFusedPipeline(std::move(ops));
    return *this;
  }

  std::unique_ptr<QueryPlan> Finish(const Src& result) {
    UOT_CHECK(result.temp != nullptr);
    plan_->SetResultTable(result.temp);
    return std::move(plan_);
  }

 private:
  template <typename AttachFn>
  void Attach(const Src& in, int consumer, AttachFn&& attach_base) {
    if (in.op < 0) {
      attach_base(in.table);
    } else {
      // Edges out of an exchange operator carry the repartition tag so
      // policies and profiles can treat them differently from pipeline
      // edges.
      plan_->AddStreamingEdge(in.op, consumer, 0,
                              IsExchange(in.op)
                                  ? QueryPlan::EdgeKind::kExchange
                                  : QueryPlan::EdgeKind::kPipeline);
    }
  }

  bool IsExchange(int op) const {
    return op >= 0 &&
           dynamic_cast<const ExchangeOperator*>(plan_->op(op)) != nullptr;
  }

  int ExchangeRadixBits(int op) const {
    return dynamic_cast<const ExchangeOperator*>(plan_->op(op))->radix_bits();
  }

  StorageManager* const storage_;
  const PlanBuilderConfig config_;
  std::unique_ptr<QueryPlan> plan_;
  std::map<const BuildHashOperator*, int> build_index_;
};

}  // namespace uot

#endif  // UOT_PLAN_PLAN_BUILDER_H_
