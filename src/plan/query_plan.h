#ifndef UOT_PLAN_QUERY_PLAN_H_
#define UOT_PLAN_QUERY_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "operators/operator.h"
#include "scheduler/uot_policy.h"
#include "storage/insert_destination.h"
#include "storage/storage_manager.h"
#include "storage/table.h"

namespace uot {

/// A physical query plan: a DAG of operators connected by two kinds of
/// edges (paper Section III-C):
///
///  - streaming edges carry blocks of the producer's output to the consumer;
///    the scheduler's UoT policy decides when accumulated blocks are
///    actually transferred;
///  - blocking edges express hard ordering (e.g. a probe operator cannot
///    start until its hash-table build operator has finished).
///
/// The plan also owns the temporary tables and insert destinations of its
/// producer operators, and identifies the result table.
class QueryPlan {
 public:
  explicit QueryPlan(StorageManager* storage) : storage_(storage) {}
  UOT_DISALLOW_COPY_AND_ASSIGN(QueryPlan);

  /// What a streaming edge carries (the Theseus lesson: data movement
  /// between partitions is a first-class cost, distinct from pipeline
  /// flow):
  ///  - kPipeline: the producer's output stream in input order;
  ///  - kExchange: a hash-repartitioned stream — the producer is an
  ///    ExchangeOperator and every block is tagged with its partition, so
  ///    the consumer fans work out per partition. Exchange edges sit on the
  ///    same UoT spectrum but their policy trade-off differs (a whole-table
  ///    UoT here re-creates the serial repartition barrier).
  enum class EdgeKind : uint8_t {
    kPipeline = 0,
    kExchange = 1,
  };

  struct StreamingEdge {
    int producer;
    int consumer;
    int consumer_input;
    /// Per-edge UoT annotation in blocks per transfer
    /// (UotPolicy::kWholeTable = materialize). 0 = unannotated: the edge
    /// follows the session's UoT policy. An annotation pins the edge — it
    /// overrides both the session default and any runtime-adaptive policy.
    uint64_t uot_blocks = 0;
    EdgeKind kind = EdgeKind::kPipeline;
  };
  struct BlockingEdge {
    int producer;
    int consumer;
  };

  /// What the Section V/VI cost model expected of one streaming edge when
  /// it chose (or seeded) the edge's UoT. Stored on the plan by
  /// CostModelUotChooser::AnnotatePredictions so the post-run profile can
  /// compute residuals (predicted minus measured) without re-running the
  /// model — the observe half of the observe–model–act loop.
  struct EdgePrediction {
    /// UoT the model chose (UotPolicy::kWholeTable = materialize).
    uint64_t uot_blocks = 0;
    /// Estimated intermediate size the choice was based on.
    uint64_t est_rows = 0;
    uint64_t est_bytes = 0;
    uint64_t est_blocks = 0;
    /// Expected number of transfers at the chosen UoT.
    uint64_t predicted_transfers = 0;
    /// Section VI footprint the choice budgets for: bytes buffered on the
    /// edge at the chosen UoT (whole intermediate when materializing).
    uint64_t predicted_footprint_bytes = 0;
    /// Section V transfer-cost estimate of the chosen point.
    double predicted_cost_ns = 0.0;
    /// Chooser's one-line rationale (CostModelUotChooser::UotChoice).
    std::string reason;
  };

  /// Adds an operator, returning its index.
  int AddOperator(std::unique_ptr<Operator> op);

  /// Declares that `producer`'s completed output blocks stream to
  /// `consumer` (input slot `consumer_input`), subject to the UoT policy.
  void AddStreamingEdge(int producer, int consumer, int consumer_input = 0,
                        EdgeKind kind = EdgeKind::kPipeline);

  /// Declares an exchange (repartition) edge: `producer` must be an
  /// ExchangeOperator whose completed blocks carry partition tags.
  void AddExchangeEdge(int producer, int consumer, int consumer_input = 0) {
    AddStreamingEdge(producer, consumer, consumer_input, EdgeKind::kExchange);
  }

  /// Declares that `consumer` may not generate work orders until
  /// `producer` has finished.
  void AddBlockingEdge(int producer, int consumer);

  /// Creates a plan-owned temporary table.
  Table* CreateTempTable(std::string name, Schema schema, Layout layout,
                         size_t block_bytes);

  /// Creates a plan-owned insert destination writing to `table`. Register
  /// it as an operator's output with RegisterOutput once the operator has
  /// been added; the scheduler installs the block-ready listener at
  /// execution start.
  InsertDestination* CreateDestination(Table* table);

  /// Declares `destination` (from CreateDestination) as `producer`'s
  /// output.
  void RegisterOutput(int producer, InsertDestination* destination);

  void SetResultTable(Table* table) { result_table_ = table; }
  Table* result_table() const { return result_table_; }

  int num_operators() const { return static_cast<int>(operators_.size()); }
  Operator* op(int i) { return operators_[static_cast<size_t>(i)].get(); }
  const Operator* op(int i) const {
    return operators_[static_cast<size_t>(i)].get();
  }

  const std::vector<StreamingEdge>& streaming_edges() const {
    return streaming_edges_;
  }
  const std::vector<BlockingEdge>& blocking_edges() const {
    return blocking_edges_;
  }

  /// Pins streaming edge `edge_index` to a fixed UoT, overriding the
  /// session's policy for that edge.
  void AnnotateEdgeUot(int edge_index, UotPolicy uot);

  /// The UoT annotation of streaming edge `edge_index`, or nullopt when
  /// the edge is unannotated.
  std::optional<UotPolicy> edge_uot(int edge_index) const;

  /// Records the model's expectation for streaming edge `edge_index`
  /// (overwriting any previous prediction). Predictions are advisory
  /// metadata: they never affect execution, only profiles.
  void AnnotateEdgePrediction(int edge_index, EdgePrediction prediction);

  /// The model prediction for streaming edge `edge_index`, or nullopt.
  std::optional<EdgePrediction> edge_prediction(int edge_index) const;

  /// Index of the streaming edge producer -> consumer (input slot
  /// `consumer_input`), or -1 if no such edge exists.
  int FindStreamingEdge(int producer, int consumer,
                        int consumer_input = 0) const;

  /// Declares that the operators `ops` (a linear producer→consumer chain,
  /// in pipeline order, length >= 2) should execute as one fused pipeline
  /// when the session runs with ExecConfig::pipeline_mode == kFused: rows
  /// walk the whole chain inside a single work order and the interior
  /// streaming edges transfer nothing. Advisory under kVectorized.
  /// Chains must be disjoint; fused::PipelineFuser produces valid ones
  /// automatically, and the session re-validates before fusing.
  void AnnotateFusedPipeline(std::vector<int> ops);

  /// The fused-pipeline annotations, in annotation order.
  const std::vector<std::vector<int>>& fused_pipelines() const {
    return fused_pipelines_;
  }

  /// Renders the DAG: operators, streaming edges (with UoT annotations)
  /// and blocking edges.
  std::string ToString() const;

  /// The destination registered for `producer`, or nullptr. Operators with
  /// several destinations (exchange: one per partition) return the first;
  /// use destinations_of when every sink matters.
  InsertDestination* destination_of(int producer) const;

  /// Every destination registered for `producer`, in registration order
  /// (partition order for exchange operators). Empty if none.
  std::vector<InsertDestination*> destinations_of(int producer) const;

  StorageManager* storage() const { return storage_; }

 private:
  StorageManager* const storage_;
  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<StreamingEdge> streaming_edges_;
  std::vector<BlockingEdge> blocking_edges_;
  /// Sparse map edge index -> prediction, sized lazily on first annotate.
  std::vector<std::optional<EdgePrediction>> edge_predictions_;
  std::vector<std::unique_ptr<Table>> temp_tables_;
  struct OwnedDestination {
    int producer;
    std::unique_ptr<InsertDestination> destination;
  };
  std::vector<OwnedDestination> destinations_;
  std::vector<std::vector<int>> fused_pipelines_;
  Table* result_table_ = nullptr;
};

}  // namespace uot

#endif  // UOT_PLAN_QUERY_PLAN_H_
