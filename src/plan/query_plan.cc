#include "plan/query_plan.h"

namespace uot {

int QueryPlan::AddOperator(std::unique_ptr<Operator> op) {
  operators_.push_back(std::move(op));
  return static_cast<int>(operators_.size()) - 1;
}

void QueryPlan::AddStreamingEdge(int producer, int consumer,
                                 int consumer_input) {
  UOT_CHECK(producer >= 0 && producer < num_operators());
  UOT_CHECK(consumer >= 0 && consumer < num_operators());
  UOT_CHECK(producer != consumer);
  streaming_edges_.push_back(
      StreamingEdge{producer, consumer, consumer_input});
}

void QueryPlan::AddBlockingEdge(int producer, int consumer) {
  UOT_CHECK(producer >= 0 && producer < num_operators());
  UOT_CHECK(consumer >= 0 && consumer < num_operators());
  UOT_CHECK(producer != consumer);
  blocking_edges_.push_back(BlockingEdge{producer, consumer});
}

Table* QueryPlan::CreateTempTable(std::string name, Schema schema,
                                  Layout layout, size_t block_bytes) {
  temp_tables_.push_back(std::make_unique<Table>(
      std::move(name), std::move(schema), layout, block_bytes, storage_,
      MemoryCategory::kTemporaryTable));
  return temp_tables_.back().get();
}

InsertDestination* QueryPlan::CreateDestination(Table* table) {
  destinations_.push_back(OwnedDestination{
      -1, std::make_unique<InsertDestination>(storage_, table, nullptr)});
  return destinations_.back().destination.get();
}

void QueryPlan::RegisterOutput(int producer, InsertDestination* destination) {
  UOT_CHECK(producer >= 0 && producer < num_operators());
  for (OwnedDestination& d : destinations_) {
    if (d.destination.get() == destination) {
      d.producer = producer;
      return;
    }
  }
  UOT_CHECK(false);  // destination not created by this plan
}

InsertDestination* QueryPlan::destination_of(int producer) const {
  for (const OwnedDestination& d : destinations_) {
    if (d.producer == producer) return d.destination.get();
  }
  return nullptr;
}

}  // namespace uot
