#include "plan/query_plan.h"

namespace uot {

int QueryPlan::AddOperator(std::unique_ptr<Operator> op) {
  operators_.push_back(std::move(op));
  return static_cast<int>(operators_.size()) - 1;
}

void QueryPlan::AddStreamingEdge(int producer, int consumer,
                                 int consumer_input, EdgeKind kind) {
  UOT_CHECK(producer >= 0 && producer < num_operators());
  UOT_CHECK(consumer >= 0 && consumer < num_operators());
  UOT_CHECK(producer != consumer);
  streaming_edges_.push_back(
      StreamingEdge{producer, consumer, consumer_input, 0, kind});
}

void QueryPlan::AddBlockingEdge(int producer, int consumer) {
  UOT_CHECK(producer >= 0 && producer < num_operators());
  UOT_CHECK(consumer >= 0 && consumer < num_operators());
  UOT_CHECK(producer != consumer);
  blocking_edges_.push_back(BlockingEdge{producer, consumer});
}

Table* QueryPlan::CreateTempTable(std::string name, Schema schema,
                                  Layout layout, size_t block_bytes) {
  temp_tables_.push_back(std::make_unique<Table>(
      std::move(name), std::move(schema), layout, block_bytes, storage_,
      MemoryCategory::kTemporaryTable));
  return temp_tables_.back().get();
}

InsertDestination* QueryPlan::CreateDestination(Table* table) {
  destinations_.push_back(OwnedDestination{
      -1, std::make_unique<InsertDestination>(storage_, table, nullptr)});
  return destinations_.back().destination.get();
}

void QueryPlan::RegisterOutput(int producer, InsertDestination* destination) {
  UOT_CHECK(producer >= 0 && producer < num_operators());
  for (OwnedDestination& d : destinations_) {
    if (d.destination.get() == destination) {
      d.producer = producer;
      return;
    }
  }
  UOT_CHECK(false);  // destination not created by this plan
}

void QueryPlan::AnnotateEdgeUot(int edge_index, UotPolicy uot) {
  UOT_CHECK(edge_index >= 0 &&
            edge_index < static_cast<int>(streaming_edges_.size()));
  streaming_edges_[static_cast<size_t>(edge_index)].uot_blocks =
      uot.blocks_per_transfer();
}

std::optional<UotPolicy> QueryPlan::edge_uot(int edge_index) const {
  UOT_CHECK(edge_index >= 0 &&
            edge_index < static_cast<int>(streaming_edges_.size()));
  const uint64_t blocks =
      streaming_edges_[static_cast<size_t>(edge_index)].uot_blocks;
  if (blocks == 0) return std::nullopt;
  return UotPolicy(blocks);
}

void QueryPlan::AnnotateEdgePrediction(int edge_index,
                                       EdgePrediction prediction) {
  UOT_CHECK(edge_index >= 0 &&
            edge_index < static_cast<int>(streaming_edges_.size()));
  if (edge_predictions_.size() != streaming_edges_.size()) {
    edge_predictions_.resize(streaming_edges_.size());
  }
  edge_predictions_[static_cast<size_t>(edge_index)] = std::move(prediction);
}

std::optional<QueryPlan::EdgePrediction> QueryPlan::edge_prediction(
    int edge_index) const {
  UOT_CHECK(edge_index >= 0 &&
            edge_index < static_cast<int>(streaming_edges_.size()));
  if (static_cast<size_t>(edge_index) >= edge_predictions_.size()) {
    return std::nullopt;
  }
  return edge_predictions_[static_cast<size_t>(edge_index)];
}

int QueryPlan::FindStreamingEdge(int producer, int consumer,
                                 int consumer_input) const {
  for (size_t i = 0; i < streaming_edges_.size(); ++i) {
    const StreamingEdge& e = streaming_edges_[i];
    if (e.producer == producer && e.consumer == consumer &&
        e.consumer_input == consumer_input) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void QueryPlan::AnnotateFusedPipeline(std::vector<int> ops) {
  UOT_CHECK(ops.size() >= 2);
  for (const int op : ops) {
    UOT_CHECK(op >= 0 && op < num_operators());
  }
  fused_pipelines_.push_back(std::move(ops));
}

std::string QueryPlan::ToString() const {
  std::string out = "QueryPlan{\n";
  for (size_t i = 0; i < operators_.size(); ++i) {
    out += "  op[" + std::to_string(i) + "] " + operators_[i]->name() + "\n";
  }
  for (size_t i = 0; i < streaming_edges_.size(); ++i) {
    const StreamingEdge& e = streaming_edges_[i];
    const bool exchange = e.kind == EdgeKind::kExchange;
    out += std::string(exchange ? "  xchg[" : "  stream[") +
           std::to_string(i) + "] " + std::to_string(e.producer) + " -> " +
           std::to_string(e.consumer) + " (input " +
           std::to_string(e.consumer_input) + ")";
    if (exchange) {
      const size_t parts = destinations_of(e.producer).size();
      if (parts > 1) {
        out += " [partitions=" + std::to_string(parts) + "]";
      }
    }
    if (e.uot_blocks != 0) {
      out += " [" + UotPolicy(e.uot_blocks).ToString() + "]";
    }
    out += "\n";
  }
  for (const BlockingEdge& e : blocking_edges_) {
    out += "  block " + std::to_string(e.producer) + " => " +
           std::to_string(e.consumer) + "\n";
  }
  for (size_t i = 0; i < fused_pipelines_.size(); ++i) {
    out += "  fused[" + std::to_string(i) + "]";
    for (size_t j = 0; j < fused_pipelines_[i].size(); ++j) {
      out += (j == 0 ? " " : " -> ") + std::to_string(fused_pipelines_[i][j]);
    }
    out += "\n";
  }
  out += "}";
  return out;
}

InsertDestination* QueryPlan::destination_of(int producer) const {
  for (const OwnedDestination& d : destinations_) {
    if (d.producer == producer) return d.destination.get();
  }
  return nullptr;
}

std::vector<InsertDestination*> QueryPlan::destinations_of(
    int producer) const {
  std::vector<InsertDestination*> out;
  for (const OwnedDestination& d : destinations_) {
    if (d.producer == producer) out.push_back(d.destination.get());
  }
  return out;
}

}  // namespace uot
